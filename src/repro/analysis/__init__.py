"""Determinism & correctness analysis (``totolint`` + DetSan).

The benchmark's headline promise — a parallel sweep reproduces the
serial loop *byte for byte* — only holds while no code path consults
wall-clock time, global RNG state, interpreter identity, or unordered
collection iteration on the event path.  This package machine-checks
that determinism contract from both sides:

* **Statically** — an AST lint engine (:mod:`.engine`) walks every
  module under ``src/repro/`` and applies the repo-specific rules
  registered in :mod:`.rules` (determinism TL001..TL014, performance
  TL020..TL024 in :mod:`.perf_rules`, numeric determinism
  TL030..TL034 in :mod:`.numeric_rules`).  A whole-program pass
  (:mod:`.graph`) builds the import/call graph, infers the hot set
  reachable from simkernel event handlers and chaos gates, derives
  the RNG substream registry (:mod:`.registry`) behind the
  TL010..TL012 rules, and collects the ``# totolint: merge-fn`` /
  ``canonical-json`` registry behind the numeric tier.  Findings can
  be ratcheted via :mod:`.baseline` and exported as SARIF
  (:mod:`.sarif`).
* **At runtime** — the DetSan sanitizer (:mod:`.detsan`) replays a
  scenario twice, fingerprints every RNG draw and event scheduling,
  and cross-checks each observed stream acquisition against the static
  registry (``repro run --detsan``).  The PerfSan sanitizer
  (:mod:`.perfsan`) meters per-call allocation in the inferred hot set
  with :mod:`tracemalloc` and fails when a statically allocation-free
  function allocates — or when no inferred-hot function fires at all
  (``repro run --perfsan``).  The FloatSan sanitizer (:mod:`.floatsan`)
  wraps every registered merge-fn, audits operand spec order, replays
  insensitive-declared merges under permutation, and fails on the
  first bit divergence — or when the merge registry never fires
  (``repro run --floatsan``).

Entry points:

* ``repro-toto lint`` — the CLI subcommand (see :mod:`repro.cli`).
* ``tools/totolint.py`` — the CI wrapper with stable exit codes.
* :func:`lint_paths` / :func:`lint_source` — the library API tests use.
* :func:`~repro.analysis.detsan.verify_run` — the DetSan library API.

Exit codes (stable; CI and pre-commit hooks rely on them):

* ``0`` — no violations,
* ``1`` — one or more violations (or stale baseline entries),
* ``2`` — internal error (unreadable path, unparseable file, bad rule
  selection, malformed baseline).
"""

from repro.analysis.baseline import Baseline, BaselineResult
from repro.analysis.engine import (
    LintReport,
    ModuleContext,
    Violation,
    lint_paths,
    lint_source,
)
from repro.analysis.floatsan import (
    FloatSan,
    FloatSanReport,
    OrderViolation,
    ReplayDivergence,
    merge_registry,
    verify_float_run,
)
from repro.analysis.graph import DrawSite, ProgramGraph
from repro.analysis.perfsan import (
    AllocationMismatch,
    PerfSanReport,
    verify_perf_run,
)
from repro.analysis.registry import RegistryEntry, SubstreamRegistry
from repro.analysis.report import format_json, format_text
from repro.analysis.rules import Rule, all_rules, get_rules
from repro.analysis.sarif import format_sarif

__all__ = [
    "AllocationMismatch",
    "Baseline",
    "BaselineResult",
    "DrawSite",
    "FloatSan",
    "FloatSanReport",
    "LintReport",
    "ModuleContext",
    "OrderViolation",
    "PerfSanReport",
    "ReplayDivergence",
    "ProgramGraph",
    "RegistryEntry",
    "Rule",
    "SubstreamRegistry",
    "Violation",
    "all_rules",
    "merge_registry",
    "verify_float_run",
    "verify_perf_run",
    "format_json",
    "format_sarif",
    "format_text",
    "get_rules",
    "lint_paths",
    "lint_source",
]
