"""The performance rule tier ("totoperf", TL020..TL024).

Where TL001..TL014 defend the determinism contract, this tier defends
the *efficiency* contract: the kernel's throughput trajectory in
BENCH_perf.json only ratchets upward if per-event code stays
allocation-light, draws RNG in batches, and never rescans fleet-sized
collections.  All five rules ride on the PR-4 whole-program machinery:

* the **perf-hot scope** is the inferred hot set (functions reachable
  from event handlers and chaos gates) *plus* everything under
  ``repro.simkernel`` — the kernel run loop is per-event by
  construction even though nothing schedules it as a callback;
* **TL022** consumes ``# totolint: fleet-scale`` assignment
  annotations collected by the graph extractor;
* **TL023** is program-wide: it walks the functions reachable from
  pool ``submit()`` sites (the :class:`~repro.parallel.SweepExecutor`
  boundary) the same way hot-set inference walks callback roots.

TL024 is advisory (SARIF level ``warning``): hoisting repeated
attribute loads is a real win in the hottest loops but a style call
everywhere else, so it is expected to live in the baseline ratchet
rather than fail CI outright.
"""

from __future__ import annotations

import ast
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.engine import ModuleContext, Violation
from repro.analysis.rules import Rule, _dotted, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.registry import SubstreamRegistry

#: Rule codes in this tier (the CLI's ``--select``/``--ignore`` docs
#: and CI's tier split reference this set).
PERF_TIER = ("TL020", "TL021", "TL022", "TL023", "TL024")

#: Statement types a loop-body walk never descends into: nested loops
#: own their bodies (nearest-loop attribution), nested defs run on
#: their own schedule, and Return/Raise exit the loop, so work under
#: them is not per-iteration work.
_LOOP_WALK_STOPS = (ast.For, ast.AsyncFor, ast.While,
                    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                    ast.Return, ast.Raise)

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _loop_body_nodes(loop: ast.AST) -> Iterator[ast.AST]:
    """Every node executed per iteration of ``loop`` (see stops above).

    Lambda bodies are not descended into: a lambda *definition* is
    per-iteration work (TL020 flags the node itself) but its body runs
    when called, not when the loop spins.
    """
    stack: List[ast.AST] = list(loop.body) + list(loop.orelse)
    if isinstance(loop, ast.While):
        stack.append(loop.test)
    while stack:
        node = stack.pop()
        if isinstance(node, _LOOP_WALK_STOPS):
            continue
        yield node
        if not isinstance(node, ast.Lambda):
            stack.extend(ast.iter_child_nodes(node))


class PerfHotRule(Rule):
    """A rule scoped to the *perf-hot* part of the program.

    With a program graph: the inferred hot set plus every module under
    ``repro.simkernel`` (the run loop is per-event by construction but
    is the caller of the hot roots, not one of them).  Single-module
    runs fall back to the package scopes, where every node is in scope.
    """

    scopes = ("repro.simkernel", "repro.fabric", "repro.sqldb",
              "repro.telemetry")

    def applies_to(self, context: ModuleContext) -> bool:
        if context.program is not None:
            return True
        return super().applies_to(context)

    def in_scope(self, context: ModuleContext, node: ast.AST) -> bool:
        if context.program is None:
            return True
        if context.in_package("repro.simkernel"):
            return True
        return context.program.is_hot(context.path,
                                      getattr(node, "lineno", 1))

    def hot_loops(self, context: ModuleContext) -> Iterator[ast.AST]:
        for node in ast.walk(context.tree):
            if isinstance(node, _LOOPS) and self.in_scope(context, node):
                yield node


# ---------------------------------------------------------------------------
# TL020 — per-event allocation in hot loops


@register
class NoPerEventAllocation(PerfHotRule):
    code = "TL020"
    title = "no per-iteration allocation in perf-hot loops"
    rationale = (
        "A loop on the event path runs millions of times per benchmark "
        "day; every list/dict/set/tuple display, comprehension, lambda "
        "construction, or f-string built inside it is a fresh heap "
        "object per event — exactly the cost class the PR-1 __slots__ "
        "pass and the PR-6 batch-fire loop removed. Hoist the "
        "allocation out of the loop, reuse a preallocated buffer, or "
        "format labels lazily (the kernel resolves `label()` callables "
        "only when observability asks). Scope: loops inside the "
        "inferred hot set plus repro.simkernel.")

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for loop in self.hot_loops(context):
            for node in _loop_body_nodes(loop):
                reason = self._alloc_reason(node)
                if reason is not None:
                    yield self.violation(
                        context, node,
                        f"per-event allocation: {reason} inside a "
                        "perf-hot loop; hoist it out of the loop or "
                        "reuse a buffer")

    def _alloc_reason(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, (ast.List, ast.Tuple)) \
                and not isinstance(node.ctx, ast.Load):
            return None  # unpacking target, not an allocation
        if isinstance(node, (ast.List, ast.Set, ast.Tuple)):
            if isinstance(node, ast.Tuple) and all(
                    isinstance(elt, ast.Constant) for elt in node.elts):
                return None  # constant tuples are folded at compile time
            kind = {ast.List: "list", ast.Set: "set",
                    ast.Tuple: "tuple"}[type(node)]
            return f"{kind} display"
        if isinstance(node, ast.Dict):
            return "dict display"
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            return "comprehension"
        if isinstance(node, ast.Lambda):
            return "lambda construction"
        if isinstance(node, ast.JoinedStr) and node.values:
            if any(isinstance(value, ast.FormattedValue)
                   for value in node.values):
                return "f-string formatting"
        return None


# ---------------------------------------------------------------------------
# TL021 — scalar RNG draws in hot loops


@register
class NoScalarDrawsInHotLoops(PerfHotRule):
    code = "TL021"
    title = "no scalar normal()/integers() draws in perf-hot loops"
    rationale = (
        "`Generator.normal()` / `Generator.integers()` called once per "
        "iteration pays the full numpy dispatch cost per scalar; "
        "`RngRegistry.batched(...)` (PR 6) draws the whole batch "
        "through one vectorized call and serves it back value by "
        "value with identical results. Any scalar draw in a perf-hot "
        "loop that has a BatchedStream equivalent is throughput left "
        "on the table. repro.rng itself is exempt: BatchedStream's "
        "scalar-compatibility fallback lives there by design.")

    _BATCHABLE = frozenset({"normal", "integers"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        if context.in_package("repro.rng"):
            return
        for loop in self.hot_loops(context):
            for node in _loop_body_nodes(loop):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in self._BATCHABLE):
                    continue
                if self._is_scalar(node):
                    yield self.violation(
                        context, node,
                        f"scalar `.{node.func.attr}()` draw inside a "
                        "perf-hot loop; draw the batch once via "
                        "`RngRegistry.batched(...)` and consume it "
                        "per event")

    def _is_scalar(self, node: ast.Call) -> bool:
        if any(keyword.arg == "size" for keyword in node.keywords):
            return False
        return len(node.args) <= 2  # a third positional arg is `size`


# ---------------------------------------------------------------------------
# TL022 — fleet-scale rescans on per-event paths


@register
class NoFleetScaleRescans(PerfHotRule):
    code = "TL022"
    title = "no full scans of fleet-scale collections on per-event paths"
    rationale = (
        "Collections annotated `# totolint: fleet-scale` (databases, "
        "replicas, telemetry records) grow with the simulated fleet, "
        "so iterating one inside a per-event or per-frame function "
        "turns O(1) work into O(fleet) — the exact bug class PR 5 "
        "fixed by hand in the telemetry failover rollup. Keep a "
        "cursor into the collection, maintain a running aggregate, or "
        "move the scan off the event path.")

    #: Wrappers whose iteration is still a full scan of the argument.
    _TRANSPARENT = frozenset({"enumerate", "sorted", "reversed",
                              "list", "tuple"})
    _VIEW_METHODS = frozenset({"values", "items", "keys"})

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        names = self._fleet_names(context)
        if not names:
            return
        for node in ast.walk(context.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                name = self._scanned_name(candidate, names)
                if name is not None and self.in_scope(context, candidate):
                    yield self.violation(
                        context, candidate,
                        f"full scan of fleet-scale collection `{name}` "
                        "on a per-event path; advance a cursor or "
                        "maintain a running aggregate instead")

    def _fleet_names(self, context: ModuleContext) -> Set[str]:
        if context.program is not None:
            return context.program.fleet_scale_names()
        from repro.analysis.graph import extract_module
        extract = extract_module(context.path, context.module,
                                 context.source)
        return set(extract.fleet_scale)

    def _scanned_name(self, node: ast.expr,
                      names: Set[str]) -> Optional[str]:
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name) \
                    and callee.id in self._TRANSPARENT and node.args:
                node = node.args[0]
            elif isinstance(callee, ast.Attribute) \
                    and callee.attr in self._VIEW_METHODS:
                node = callee.value
        if isinstance(node, ast.Name) and node.id in names:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in names:
            return node.attr
        return None


# ---------------------------------------------------------------------------
# TL023 — pickle-boundary purity for pool payloads (program-wide)


@register
class PickleBoundaryPurity(Rule):
    code = "TL023"
    title = "pool payloads must pickle and worker code must not mutate module state"
    rationale = (
        "The SweepExecutor boundary is a pickle boundary: a lambda or "
        "closure submitted to the pool cannot pickle at all (the "
        "executor silently falls back to serial, throwing the "
        "parallelism away), and a worker-side function that mutates a "
        "module-level cache builds state that never propagates back "
        "to the parent — or worse, diverges between workers. Deliver "
        "per-worker state through the pool initializer (the "
        "`_WORKER_DOCS` pattern) and keep every payload a plain "
        "picklable value. Worker-side reachability is name-based and "
        "over-approximate, like the hot-set inference.")
    program_wide = True

    def check_program(self, registry: "SubstreamRegistry"
                      ) -> Iterator[Violation]:
        graph = registry.graph
        inits = graph.worker_initializer_names()
        for path in sorted(graph.modules):
            for line in graph.modules[path].worker_lambdas:
                yield Violation(
                    path=path, line=line, col=0, rule=self.code,
                    message="lambda submitted to a worker pool: "
                            "closures do not pickle, so the sweep "
                            "degrades to serial; submit a module-level "
                            "function with picklable arguments")
        index = {(path, function.qualname): function
                 for path, extract in graph.modules.items()
                 for function in extract.functions}
        for path, qualname in sorted(graph.worker_functions()):
            function = index[(path, qualname)]
            if function.name in inits:
                continue  # the sanctioned worker-state delivery path
            mutables = set(graph.modules[path].module_mutables)
            for name in function.mutations:
                if name in mutables:
                    yield Violation(
                        path=path, line=function.start, col=0,
                        rule=self.code,
                        message=f"worker-side `{qualname}()` mutates "
                                f"module-level `{name}`: worker-cache "
                                "state never propagates back to the "
                                "parent; deliver it via the pool "
                                "initializer or key it by content")


# ---------------------------------------------------------------------------
# TL024 — advisory: hoist repeated loads out of hot loops


@register
class HoistRepeatedLoads(PerfHotRule):
    code = "TL024"
    title = "hoist repeated attribute/global loads out of perf-hot loops"
    rationale = (
        "Every `self._queue._buckets` load inside a loop is a fresh "
        "pair of dict lookups per iteration; binding it to a local "
        "before the loop is the cheapest optimization the interpreter "
        "offers (the batch-fire loop in the kernel does exactly this). "
        "Advisory: the rule cannot prove the attribute is loop-"
        "invariant, so findings ratchet through the baseline instead "
        "of failing CI.")
    level = "warning"

    #: Loads of the same dotted chain at or above this count fire.
    THRESHOLD = 3

    def check(self, context: ModuleContext) -> Iterator[Violation]:
        for loop in self.hot_loops(context):
            counts: Dict[str, int] = {}
            stored: Set[str] = set()
            for node, dotted in self._chains(loop):
                if isinstance(node.ctx, ast.Load):
                    counts[dotted] = counts.get(dotted, 0) + 1
                else:
                    stored.add(dotted)
            for stmt in _loop_body_nodes(loop):
                if isinstance(stmt, ast.Name) \
                        and not isinstance(stmt.ctx, ast.Load):
                    stored.add(stmt.id)
            for dotted in sorted(counts):
                if counts[dotted] < self.THRESHOLD:
                    continue
                root = dotted.split(".", 1)[0]
                if dotted in stored or root in stored or any(
                        dotted.startswith(prefix + ".")
                        for prefix in stored):
                    continue
                yield self.violation(
                    context, loop,
                    f"`{dotted}` is loaded {counts[dotted]}x inside "
                    "this perf-hot loop; bind it to a local before "
                    "the loop (advisory)")

    def _chains(self, loop: ast.AST) \
            -> Iterator[Tuple[ast.Attribute, str]]:
        """Maximal dotted attribute chains executed per iteration."""
        stack: List[ast.AST] = list(loop.body) + list(loop.orelse)
        if isinstance(loop, ast.While):
            stack.append(loop.test)
        while stack:
            node = stack.pop()
            if isinstance(node, _LOOP_WALK_STOPS) \
                    or isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted is not None:
                    yield node, dotted
                    continue  # sub-chains of a maximal chain don't count
            stack.extend(ast.iter_child_nodes(node))
