"""The RNG substream registry: every statically-known draw site.

Built from a :class:`~repro.analysis.graph.ProgramGraph`, the registry
answers "which ``(namespace, name)`` substreams does this program ever
draw, and from where?" — the static half of the determinism contract
for randomness.  Three whole-program rules read it:

* **TL010** — two distinct call paths drawing the same literal
  substream interleave their draws through one shared generator, so a
  new draw in either path silently shifts the other (the PR-3
  failover-downtime bug class).
* **TL011** — the root stream (a zero-token ``stream()`` /
  ``derive_seed()``) and raw ``root_seed`` reuse belong to
  ``repro.rng`` alone; anywhere else they bypass the named-substream
  scheme entirely.
* **TL012** — a draw site whose tokens are not all literal is
  unauditable unless it declares its name pattern with a
  ``# totolint: substream=<fnmatch-pattern>`` annotation (patterns use
  ``/`` to join tokens: ``rgmanager/*/*`` covers
  ``stream("rgmanager", node_id, metric)``).

The same registry is the ground truth for the runtime sanitizer
(:mod:`repro.analysis.detsan`): every substream a DetSan run observes
must match a registry entry, by site *and* by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Tuple

from repro.analysis.graph import DrawSite, ProgramGraph

#: Modules allowed to touch the root stream / root seed (TL011).
_ROOT_SANCTUARY = ("repro.rng",)


@dataclass(frozen=True)
class RegistryEntry:
    """One auditable substream: a literal key or a declared pattern."""

    pattern: str
    site: DrawSite
    literal: bool


class SubstreamRegistry:
    """All statically-known substream draw sites of one program."""

    def __init__(self, graph: ProgramGraph) -> None:
        self.graph = graph
        self.entries: List[RegistryEntry] = []
        #: literal "/"-joined key -> draw sites using it.
        self._by_key: Dict[str, List[DrawSite]] = {}
        for site in graph.draw_sites():
            key = site.literal_key
            if key is not None:
                joined = "/".join(key)
                self._by_key.setdefault(joined, []).append(site)
                self.entries.append(RegistryEntry(
                    pattern=joined, site=site, literal=True))
            elif site.annotation is not None:
                self.entries.append(RegistryEntry(
                    pattern=site.annotation, site=site, literal=False))

    def __len__(self) -> int:
        return len(self.entries)

    # -- static checks (consumed by the TL010..TL012 rules) -------------

    def collisions(self) -> List[Tuple[str, List[DrawSite]]]:
        """Literal keys drawn from more than one distinct call path.

        Two draws inside the *same* function are one logical user of the
        stream; distinct enclosing functions are distinct call paths.
        """
        found = []
        for key, sites in sorted(self._by_key.items()):
            paths = {(site.path, site.func) for site in sites}
            if len(paths) > 1:
                found.append((key, sorted(
                    sites, key=lambda s: (s.path, s.line))))
        return found

    def root_draws(self) -> List[DrawSite]:
        """Zero-token draw sites outside ``repro.rng`` (the root stream)."""
        return [site for site in self.graph.draw_sites()
                if not site.tokens and site.method != "fork"
                and site.module not in _ROOT_SANCTUARY]

    def root_seed_reads(self) -> List[Tuple[str, str, int]]:
        """``.root_seed`` reads outside ``repro.rng``: (path, module, line)."""
        found = []
        for path, extract in sorted(self.graph.modules.items()):
            if extract.module in _ROOT_SANCTUARY:
                continue
            for line in extract.root_seed_reads:
                found.append((path, extract.module, line))
        return found

    def unauditable(self) -> List[DrawSite]:
        """Dynamic draw sites with no ``substream=`` annotation."""
        return [site for site in self.graph.draw_sites()
                if site.literal_key is None and site.annotation is None
                and site.module not in _ROOT_SANCTUARY]

    # -- runtime matching (consumed by DetSan) ---------------------------

    def match_name(self, name: str) -> Optional[RegistryEntry]:
        """The registry entry covering a runtime ``"/"``-joined name."""
        for entry in self.entries:
            if entry.literal:
                if entry.pattern == name:
                    return entry
            elif fnmatchcase(name, entry.pattern):
                return entry
        return None

    def match_site(self, file_suffix: str, line: int) -> Optional[DrawSite]:
        """The static draw site containing ``file:line``, if any.

        ``file_suffix`` is matched against the tail of each site's path
        so an installed package and a source checkout compare equal.
        """
        for site in self.graph.draw_sites():
            if not (site.line <= line <= site.end_line):
                continue
            if site.path.endswith(file_suffix) \
                    or file_suffix.endswith(site.path):
                return site
        return None

    def names(self) -> Tuple[str, ...]:
        """Sorted registry patterns (for reports and docs)."""
        return tuple(sorted({entry.pattern for entry in self.entries}))
