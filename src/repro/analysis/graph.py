"""Whole-program module/call-graph builder for the analyzer.

Everything here is AST-only: no module under analysis is ever imported,
so the analyzer can run against broken, partial, or hostile trees.  One
:class:`ProgramGraph` covers every file handed to :meth:`ProgramGraph.build`
and answers the two whole-program questions the rules need:

* **RNG substream dataflow** — every ``.stream(...)`` /
  ``.derive_seed(...)`` / ``.fork(...)`` call site, with its token path
  (literal where auditable, declared via a ``# totolint: substream=``
  annotation where dynamic) — the input to
  :mod:`repro.analysis.registry`.
* **Hot-path inference** — which functions are reachable from simkernel
  event handlers (callbacks handed to ``schedule``/``schedule_after``/
  ``PeriodicProcess``/listener registrations) and from the chaos gates.
  Resolution is name-based and deliberately *over*-approximate: a
  function is treated as hot whenever any same-named function is
  reachable, because missing a hot function silences a determinism rule
  while a false positive merely widens its coverage.

Per-file extraction is cached by content hash (``--cache``): an
unchanged file's extract is reused verbatim, so incremental re-runs of
the whole-program passes skip the AST walk for everything but edited
files.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import (
    LintEngineError,
    iter_python_files,
    module_name_for,
    read_source,
)

#: Bump when the extract shape changes; stale caches are discarded.
CACHE_VERSION = 2

#: Methods that draw from (or derive seeds off) an RNG registry.
#: ``batched`` is the vectorized façade — it acquires the same named
#: substream as ``stream`` and is audited identically (TL010..TL012).
DRAW_METHODS = frozenset({"stream", "derive_seed", "fork", "batched"})

#: Call names whose function-valued arguments become hot roots:
#: ``schedule(time, callback)``, ``schedule_after(delay, callback)``,
#: ``PeriodicProcess(kernel, period, tick)``.
_CALLBACK_SLOTS: Dict[str, Tuple[int, Tuple[str, ...]]] = {
    "schedule": (1, ("callback",)),
    "schedule_after": (1, ("callback",)),
    "schedule_oneshot": (1, ("callback",)),
    "schedule_oneshot_after": (1, ("callback",)),
    "PeriodicProcess": (2, ("tick",)),
}

#: Listener-registration call names: every function-valued argument is
#: a callback invoked later from the event path.
_LISTENER_CALL = re.compile(r"^(add_\w*listener|attach\w*|register\w*)$")

#: The chaos gate methods; they are consulted from inside event
#: handlers, so any function they call is hot (see docs/CHAOS.md).
CHAOS_GATES = frozenset({
    "on_read", "on_write", "stale_view", "rpc_gate",
    "control_plane_gate", "population_gate",
})

#: ``# totolint: substream=<pattern>`` — declares the substream name
#: pattern for a draw site whose tokens are not all literal.
_SUBSTREAM_ANNOTATION = re.compile(
    r"#\s*totolint:\s*substream=([\w\-*?/\[\]!]+)")


@dataclass(frozen=True)
class DrawSite:
    """One static RNG draw site (``registry.stream(...)`` and friends)."""

    path: str
    module: str
    line: int
    end_line: int
    col: int
    method: str
    #: One entry per argument: the literal string for auditable tokens,
    #: ``None`` for dynamic expressions.
    tokens: Tuple[Optional[str], ...]
    #: Dotted name of the enclosing function (``""`` at module level).
    func: str
    #: Declared ``substream=`` pattern for dynamic sites, or ``None``.
    annotation: Optional[str]

    @property
    def literal_key(self) -> Optional[Tuple[str, ...]]:
        """The ``"/"``-joinable token path when fully literal."""
        if any(token is None for token in self.tokens):
            return None
        return tuple(token for token in self.tokens if token is not None)

    @property
    def pattern(self) -> Optional[str]:
        """fnmatch pattern this site's runtime names must satisfy."""
        if self.annotation is not None:
            return self.annotation
        key = self.literal_key
        if key is None:
            return None
        return "/".join(key)

    def where(self) -> str:
        return f"{self.path}:{self.line} (in {self.func or '<module>'})"


@dataclass
class FunctionNode:
    """One function/method with its outgoing name-level edges."""

    qualname: str
    name: str
    start: int
    end: int
    #: Terminal names of everything this function calls.
    calls: Tuple[str, ...]
    #: Terminal names of functions referenced without being called
    #: (address-taken: passed around, stored, returned).
    refs: Tuple[str, ...]
    #: Terminal names handed to schedule()/PeriodicProcess()/listener
    #: registrations — these are hot *roots*.
    callbacks: Tuple[str, ...]


@dataclass
class ModuleExtract:
    """Everything the whole-program passes need from one module."""

    path: str
    module: str
    functions: List[FunctionNode] = field(default_factory=list)
    draws: List[DrawSite] = field(default_factory=list)
    #: Lines reading ``.root_seed`` (TL011 input).
    root_seed_reads: List[int] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "module": self.module,
            "functions": [
                [f.qualname, f.name, f.start, f.end,
                 list(f.calls), list(f.refs), list(f.callbacks)]
                for f in self.functions],
            "draws": [
                [d.line, d.end_line, d.col, d.method, list(d.tokens),
                 d.func, d.annotation]
                for d in self.draws],
            "root_seed_reads": list(self.root_seed_reads),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ModuleExtract":
        extract = cls(path=str(data["path"]), module=str(data["module"]))
        for qualname, name, start, end, calls, refs, callbacks \
                in data["functions"]:  # type: ignore[union-attr]
            extract.functions.append(FunctionNode(
                qualname=qualname, name=name, start=start, end=end,
                calls=tuple(calls), refs=tuple(refs),
                callbacks=tuple(callbacks)))
        for line, end_line, col, method, tokens, func, annotation \
                in data["draws"]:  # type: ignore[union-attr]
            extract.draws.append(DrawSite(
                path=extract.path, module=extract.module, line=line,
                end_line=end_line, col=col, method=method,
                tokens=tuple(tokens), func=func, annotation=annotation))
        extract.root_seed_reads = list(data["root_seed_reads"])  # type: ignore[arg-type]
        return extract


def _terminal(node: ast.expr) -> Optional[str]:
    """Terminal name of a Name/Attribute reference, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _ModuleVisitor(ast.NodeVisitor):
    """Single-pass extractor: functions, edges, draw sites."""

    def __init__(self, extract: ModuleExtract, source: str) -> None:
        self.extract = extract
        self.lines = source.splitlines()
        #: Stack of (qualname-prefix, calls, refs, callbacks) scopes.
        self._scopes: List[Tuple[str, List[str], List[str], List[str]]] = []

    # -- scope helpers --------------------------------------------------

    def _enter(self, name: str) -> None:
        outer = self._scopes[-1][0] if self._scopes else ""
        prefix = outer + "." + name if outer else name
        self._scopes.append((prefix, [], [], []))

    def _exit(self, node: ast.AST, is_function: bool) -> None:
        prefix, calls, refs, callbacks = self._scopes.pop()
        if is_function:
            self.extract.functions.append(FunctionNode(
                qualname=prefix, name=prefix.rsplit(".", 1)[-1],
                start=node.lineno,
                end=getattr(node, "end_lineno", node.lineno),
                calls=tuple(calls), refs=tuple(refs),
                callbacks=tuple(callbacks)))
        elif self._scopes:
            # Class scope: fold leftovers into the enclosing scope so
            # class-body calls still produce edges.
            outer = self._scopes[-1]
            outer[1].extend(calls)
            outer[2].extend(refs)
            outer[3].extend(callbacks)

    def _record(self, index: int, name: Optional[str]) -> None:
        if name is not None and self._scopes:
            self._scopes[-1][index].append(name)

    # -- visitors -------------------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        self._scopes.append(("", [], [], []))
        self.generic_visit(node)
        self._scopes.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node.name)
        self.generic_visit(node)
        self._exit(node, is_function=False)

    def _visit_function(self, node: ast.AST, name: str) -> None:
        self._enter(name)
        self.generic_visit(node)
        self._exit(node, is_function=True)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    # Lambdas stay part of the enclosing function's scope: their calls
    # become the encloser's edges, which is what a callback closure is.

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "root_seed" and isinstance(node.ctx, ast.Load):
            self.extract.root_seed_reads.append(node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = _terminal(node.func)
        self._record(1, callee)
        if callee in DRAW_METHODS and isinstance(node.func, ast.Attribute):
            self._record_draw(node, callee)
        if callee is not None:
            self._record_callbacks(node, callee)
        # Any bare function reference in an argument is address-taken.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._record(2, _terminal(arg))
        self.generic_visit(node)

    # -- extraction details ---------------------------------------------

    def _record_callbacks(self, node: ast.Call, callee: str) -> None:
        slot = _CALLBACK_SLOTS.get(callee)
        candidates: List[ast.expr] = []
        if slot is not None:
            index, keywords = slot
            if len(node.args) > index:
                candidates.append(node.args[index])
            candidates.extend(kw.value for kw in node.keywords
                              if kw.arg in keywords)
        elif _LISTENER_CALL.match(callee):
            candidates.extend(node.args)
            candidates.extend(kw.value for kw in node.keywords)
        for candidate in candidates:
            if isinstance(candidate, ast.Lambda):
                for inner in ast.walk(candidate.body):
                    if isinstance(inner, ast.Call):
                        self._record(3, _terminal(inner.func))
                    elif isinstance(inner, (ast.Name, ast.Attribute)):
                        self._record(3, _terminal(inner))
            else:
                self._record(3, _terminal(candidate))

    def _record_draw(self, node: ast.Call, method: str) -> None:
        tokens: List[Optional[str]] = []
        for arg in node.args:
            if isinstance(arg, ast.Constant) \
                    and isinstance(arg.value, (str, int)):
                tokens.append(str(arg.value))
            elif isinstance(arg, ast.Starred):
                tokens.append(None)
            else:
                tokens.append(None)
        end_line = getattr(node, "end_lineno", node.lineno)
        annotation = None
        for lineno in range(node.lineno, min(end_line + 1,
                                             len(self.lines) + 1)):
            match = _SUBSTREAM_ANNOTATION.search(self.lines[lineno - 1])
            if match:
                annotation = match.group(1)
                break
        self.extract.draws.append(DrawSite(
            path=self.extract.path, module=self.extract.module,
            line=node.lineno, end_line=end_line, col=node.col_offset,
            method=method, tokens=tuple(tokens),
            func=self._scopes[-1][0] if self._scopes else "",
            annotation=annotation))


def extract_module(path: str, module: str, source: str) -> ModuleExtract:
    """AST-walk one module into its :class:`ModuleExtract`."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise LintEngineError(f"cannot parse {path}: {error}") from error
    extract = ModuleExtract(path=path, module=module)
    _ModuleVisitor(extract, source).visit(tree)
    return extract


class ProgramGraph:
    """The whole-program view: modules, call edges, hot set, draws."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleExtract] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        #: path -> sorted (start, end, qualname) intervals of hot code.
        self._hot: Dict[str, List[Tuple[int, int, str]]] = {}
        self._hot_names: Set[str] = set()

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, paths: Sequence[Path],
              cache_path: Optional[Path] = None) -> "ProgramGraph":
        """Analyze every Python file under ``paths`` (files or dirs)."""
        graph = cls()
        cache = graph._load_cache(cache_path)
        cached_files = cache.get("files", {})
        new_cache_files: Dict[str, object] = {}
        for root in paths:
            root = Path(root)
            if not root.exists():
                raise LintEngineError(f"no such file or directory: {root}")
            for file_path in iter_python_files(root):
                key = str(file_path)
                source = read_source(file_path)
                digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
                entry = cached_files.get(key)
                if entry is not None and entry.get("sha") == digest:
                    extract = ModuleExtract.from_json(entry["extract"])
                    graph.cache_hits += 1
                else:
                    extract = extract_module(
                        key, module_name_for(file_path), source)
                    graph.cache_misses += 1
                graph.modules[key] = extract
                new_cache_files[key] = {"sha": digest,
                                        "extract": extract.to_json()}
        graph._infer_hot_paths()
        if cache_path is not None:
            graph._save_cache(cache_path, new_cache_files)
        return graph

    @classmethod
    def from_source(cls, source: str,
                    path: str = "src/repro/example.py") -> "ProgramGraph":
        """Single-module graph (test fixtures)."""
        graph = cls()
        extract = extract_module(path, module_name_for(Path(path)), source)
        graph.modules[path] = extract
        graph.cache_misses = 1
        graph._infer_hot_paths()
        return graph

    # -- cache ----------------------------------------------------------

    def _load_cache(self, cache_path: Optional[Path]) -> Dict[str, Dict]:
        if cache_path is None or not Path(cache_path).exists():
            return {}
        try:
            data = json.loads(Path(cache_path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if data.get("version") != CACHE_VERSION:
            return {}
        return data

    def _save_cache(self, cache_path: Path,
                    files: Dict[str, object]) -> None:
        payload = json.dumps({"version": CACHE_VERSION, "files": files},
                             sort_keys=True)
        try:
            Path(cache_path).write_text(payload, encoding="utf-8")
        except OSError as error:
            raise LintEngineError(
                f"cannot write cache {cache_path}: {error}") from error

    # -- hot-path inference ---------------------------------------------

    def _infer_hot_paths(self) -> None:
        """Mark every function reachable from event handlers/chaos gates.

        Roots: every callback handed to the kernel or a listener
        registration anywhere in the program, plus the chaos gate
        methods of modules under ``repro.chaos``. Edges: name-level
        calls *and* address-taken references (a function a hot function
        merely holds may still be invoked from the event path).
        """
        by_name: Dict[str, List[Tuple[str, FunctionNode]]] = {}
        for path, extract in self.modules.items():
            for function in extract.functions:
                by_name.setdefault(function.name, []).append(
                    (path, function))

        roots: Set[Tuple[str, str]] = set()
        for path, extract in self.modules.items():
            for function in extract.functions:
                for callback in function.callbacks:
                    for target_path, target in by_name.get(callback, ()):
                        roots.add((target_path, target.qualname))
            if extract.module == "repro.chaos" \
                    or extract.module.startswith("repro.chaos."):
                for function in extract.functions:
                    if function.name in CHAOS_GATES:
                        roots.add((path, function.qualname))

        index: Dict[Tuple[str, str], FunctionNode] = {
            (path, function.qualname): function
            for path, extract in self.modules.items()
            for function in extract.functions}

        seen: Set[Tuple[str, str]] = set()
        frontier = sorted(roots)
        while frontier:
            key = frontier.pop()
            if key in seen or key not in index:
                continue
            seen.add(key)
            function = index[key]
            for name in (*function.calls, *function.refs,
                         *function.callbacks):
                for target_path, target in by_name.get(name, ()):
                    candidate = (target_path, target.qualname)
                    if candidate not in seen:
                        frontier.append(candidate)

        for path, qualname in seen:
            function = index[(path, qualname)]
            self._hot.setdefault(path, []).append(
                (function.start, function.end, qualname))
            self._hot_names.add(
                f"{self.modules[path].module}:{qualname}")
        for intervals in self._hot.values():
            intervals.sort()

    # -- queries --------------------------------------------------------

    def is_hot(self, path: str, line: int) -> bool:
        """Whether ``line`` of ``path`` lies inside a hot function."""
        for start, end, _ in self._hot.get(path, ()):
            if start <= line <= end:
                return True
        return False

    def hot_functions(self) -> Tuple[str, ...]:
        """Sorted ``module:qualname`` labels of the inferred hot set."""
        return tuple(sorted(self._hot_names))

    def draw_sites(self) -> Tuple[DrawSite, ...]:
        """Every draw site in the program, in stable (path, line) order."""
        return tuple(sorted(
            (draw for extract in self.modules.values()
             for draw in extract.draws),
            key=lambda d: (d.path, d.line, d.col)))

    def covers(self, path: str) -> bool:
        return path in self.modules
