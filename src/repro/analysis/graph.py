"""Whole-program module/call-graph builder for the analyzer.

Everything here is AST-only: no module under analysis is ever imported,
so the analyzer can run against broken, partial, or hostile trees.  One
:class:`ProgramGraph` covers every file handed to :meth:`ProgramGraph.build`
and answers the two whole-program questions the rules need:

* **RNG substream dataflow** — every ``.stream(...)`` /
  ``.derive_seed(...)`` / ``.fork(...)`` call site, with its token path
  (literal where auditable, declared via a ``# totolint: substream=``
  annotation where dynamic) — the input to
  :mod:`repro.analysis.registry`.
* **Hot-path inference** — which functions are reachable from simkernel
  event handlers (callbacks handed to ``schedule``/``schedule_after``/
  ``PeriodicProcess``/listener registrations) and from the chaos gates.
  Resolution is name-based and deliberately *over*-approximate: a
  function is treated as hot whenever any same-named function is
  reachable, because missing a hot function silences a determinism rule
  while a false positive merely widens its coverage.

Per-file extraction is cached by content hash (``--cache``): an
unchanged file's extract is reused verbatim, so incremental re-runs of
the whole-program passes skip the AST walk for everything but edited
files.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import (
    LintEngineError,
    iter_python_files,
    module_name_for,
    read_source,
)

#: Bump when the extract shape changes; stale caches are discarded.
CACHE_VERSION = 4

#: Methods that draw from (or derive seeds off) an RNG registry.
#: ``batched`` is the vectorized façade — it acquires the same named
#: substream as ``stream`` and is audited identically (TL010..TL012).
DRAW_METHODS = frozenset({"stream", "derive_seed", "fork", "batched"})

#: Call names whose function-valued arguments become hot roots:
#: ``schedule(time, callback)``, ``schedule_after(delay, callback)``,
#: ``PeriodicProcess(kernel, period, tick)``.
_CALLBACK_SLOTS: Dict[str, Tuple[int, Tuple[str, ...]]] = {
    "schedule": (1, ("callback",)),
    "schedule_after": (1, ("callback",)),
    "schedule_oneshot": (1, ("callback",)),
    "schedule_oneshot_after": (1, ("callback",)),
    "PeriodicProcess": (2, ("tick",)),
}

#: Listener-registration call names: every function-valued argument is
#: a callback invoked later from the event path.
_LISTENER_CALL = re.compile(r"^(add_\w*listener|attach\w*|register\w*)$")

#: The chaos gate methods; they are consulted from inside event
#: handlers, so any function they call is hot (see docs/CHAOS.md).
CHAOS_GATES = frozenset({
    "on_read", "on_write", "stale_view", "rpc_gate",
    "control_plane_gate", "population_gate",
})

#: ``# totolint: substream=<pattern>`` — declares the substream name
#: pattern for a draw site whose tokens are not all literal.
_SUBSTREAM_ANNOTATION = re.compile(
    r"#\s*totolint:\s*substream=([\w\-*?/\[\]!]+)")

#: ``# totolint: fleet-scale`` — marks the collection assigned on that
#: line as growing with the fleet (databases, replicas, telemetry
#: records); TL022 flags full rescans of it on per-event paths.
_FLEET_ANNOTATION = re.compile(r"#\s*totolint:\s*fleet-scale\b")

#: ``# totolint: merge-fn[=insensitive]`` — registers the annotated
#: function as a sequential merge helper.  Placed on (or directly
#: above) the ``def`` line.  TL034 checks the body is a left-fold and
#: FloatSan wraps the function at runtime; ``=insensitive`` declares
#: the reduction order-insensitive (bit-identical under permutation),
#: the default (``ordered``) declares it spec-order-sensitive.
_MERGE_ANNOTATION = re.compile(r"#\s*totolint:\s*merge-fn(?:=(\w+))?")

#: ``# totolint: canonical-json`` — marks the annotated function as a
#: canonical float-rendering sink (digest/JSON export); TL033 flags
#: ad-hoc float rendering on digest paths *outside* these sinks.
_CANONICAL_ANNOTATION = re.compile(r"#\s*totolint:\s*canonical-json\b")

#: Method names that mutate the receiver in place (TL023 input).
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "clear", "remove",
    "discard", "pop", "popitem", "setdefault", "appendleft", "sort",
})

#: Constructors whose result is mutable shared state when bound at
#: module level (mirrors TL005's list).
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray",
                            "defaultdict", "deque", "Counter",
                            "OrderedDict"})


@dataclass(frozen=True)
class DrawSite:
    """One static RNG draw site (``registry.stream(...)`` and friends)."""

    path: str
    module: str
    line: int
    end_line: int
    col: int
    method: str
    #: One entry per argument: the literal string for auditable tokens,
    #: ``None`` for dynamic expressions.
    tokens: Tuple[Optional[str], ...]
    #: Dotted name of the enclosing function (``""`` at module level).
    func: str
    #: Declared ``substream=`` pattern for dynamic sites, or ``None``.
    annotation: Optional[str]

    @property
    def literal_key(self) -> Optional[Tuple[str, ...]]:
        """The ``"/"``-joinable token path when fully literal."""
        if any(token is None for token in self.tokens):
            return None
        return tuple(token for token in self.tokens if token is not None)

    @property
    def pattern(self) -> Optional[str]:
        """fnmatch pattern this site's runtime names must satisfy."""
        if self.annotation is not None:
            return self.annotation
        key = self.literal_key
        if key is None:
            return None
        return "/".join(key)

    def where(self) -> str:
        return f"{self.path}:{self.line} (in {self.func or '<module>'})"


@dataclass
class FunctionNode:
    """One function/method with its outgoing name-level edges."""

    qualname: str
    name: str
    start: int
    end: int
    #: Terminal names of everything this function calls.
    calls: Tuple[str, ...]
    #: Terminal names of functions referenced without being called
    #: (address-taken: passed around, stored, returned).
    refs: Tuple[str, ...]
    #: Terminal names handed to schedule()/PeriodicProcess()/listener
    #: registrations — these are hot *roots*.
    callbacks: Tuple[str, ...]
    #: Bare module-level names this function mutates in place
    #: (subscript stores, mutator-method calls, `global` rebinding);
    #: names the function also binds locally are filtered out.
    mutations: Tuple[str, ...] = ()


@dataclass
class ModuleExtract:
    """Everything the whole-program passes need from one module."""

    path: str
    module: str
    functions: List[FunctionNode] = field(default_factory=list)
    draws: List[DrawSite] = field(default_factory=list)
    #: Lines reading ``.root_seed`` (TL011 input).
    root_seed_reads: List[int] = field(default_factory=list)
    #: Names annotated ``# totolint: fleet-scale`` at assignment.
    fleet_scale: List[str] = field(default_factory=list)
    #: Module-level names bound to mutable containers.
    module_mutables: List[str] = field(default_factory=list)
    #: Terminal names submitted to a worker pool (``pool.submit(f, ...)``).
    worker_roots: List[str] = field(default_factory=list)
    #: Terminal names passed as ``initializer=`` — the sanctioned
    #: worker-state delivery path, exempt from TL023's mutation check.
    worker_inits: List[str] = field(default_factory=list)
    #: Lines where a lambda/closure is submitted to a pool directly.
    worker_lambdas: List[int] = field(default_factory=list)
    #: ``(qualname, sensitivity)`` of ``# totolint: merge-fn`` functions.
    merge_fns: List[Tuple[str, str]] = field(default_factory=list)
    #: Qualnames annotated ``# totolint: canonical-json``.
    canonical_fns: List[str] = field(default_factory=list)
    #: Qualnames of functions that accumulate (``+=``) inside a loop —
    #: the float-accumulation fact behind TL034's unannotated-merger
    #: check (over-approximate: integer accumulators count too).
    accumulators: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "module": self.module,
            "functions": [
                [f.qualname, f.name, f.start, f.end,
                 list(f.calls), list(f.refs), list(f.callbacks),
                 list(f.mutations)]
                for f in self.functions],
            "draws": [
                [d.line, d.end_line, d.col, d.method, list(d.tokens),
                 d.func, d.annotation]
                for d in self.draws],
            "root_seed_reads": list(self.root_seed_reads),
            "fleet_scale": list(self.fleet_scale),
            "module_mutables": list(self.module_mutables),
            "worker_roots": list(self.worker_roots),
            "worker_inits": list(self.worker_inits),
            "worker_lambdas": list(self.worker_lambdas),
            "merge_fns": [[qualname, sensitivity]
                          for qualname, sensitivity in self.merge_fns],
            "canonical_fns": list(self.canonical_fns),
            "accumulators": list(self.accumulators),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ModuleExtract":
        extract = cls(path=str(data["path"]), module=str(data["module"]))
        for qualname, name, start, end, calls, refs, callbacks, \
                mutations in data["functions"]:  # type: ignore[union-attr]
            extract.functions.append(FunctionNode(
                qualname=qualname, name=name, start=start, end=end,
                calls=tuple(calls), refs=tuple(refs),
                callbacks=tuple(callbacks), mutations=tuple(mutations)))
        for line, end_line, col, method, tokens, func, annotation \
                in data["draws"]:  # type: ignore[union-attr]
            extract.draws.append(DrawSite(
                path=extract.path, module=extract.module, line=line,
                end_line=end_line, col=col, method=method,
                tokens=tuple(tokens), func=func, annotation=annotation))
        extract.root_seed_reads = list(data["root_seed_reads"])  # type: ignore[arg-type]
        extract.fleet_scale = list(data["fleet_scale"])  # type: ignore[arg-type]
        extract.module_mutables = list(data["module_mutables"])  # type: ignore[arg-type]
        extract.worker_roots = list(data["worker_roots"])  # type: ignore[arg-type]
        extract.worker_inits = list(data["worker_inits"])  # type: ignore[arg-type]
        extract.worker_lambdas = list(data["worker_lambdas"])  # type: ignore[arg-type]
        extract.merge_fns = [
            (str(qualname), str(sensitivity))
            for qualname, sensitivity in data["merge_fns"]]  # type: ignore[union-attr]
        extract.canonical_fns = list(data["canonical_fns"])  # type: ignore[arg-type]
        extract.accumulators = list(data["accumulators"])  # type: ignore[arg-type]
        return extract


def _terminal(node: ast.expr) -> Optional[str]:
    """Terminal name of a Name/Attribute reference, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_mutable_value(node: ast.expr) -> bool:
    """Whether an assigned value is a mutable container construct."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        name = _terminal(node.func)
        return name in _MUTABLE_CALLS
    return False


class _Scope:
    """One lexical scope being extracted (module, class, or function)."""

    __slots__ = ("prefix", "calls", "refs", "callbacks", "mutations",
                 "binds", "globals", "accumulates")

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.calls: List[str] = []
        self.refs: List[str] = []
        self.callbacks: List[str] = []
        self.mutations: List[str] = []
        #: Whether the scope runs an ``+=`` inside a loop body.
        self.accumulates = False
        #: Names bound locally (params, assignments, loop targets):
        #: in-place mutation of these is not module-state mutation.
        self.binds: Set[str] = set()
        #: Names declared ``global`` — rebinding them *is* mutation.
        self.globals: Set[str] = set()


class _ModuleVisitor(ast.NodeVisitor):
    """Single-pass extractor: functions, edges, draw sites."""

    def __init__(self, extract: ModuleExtract, source: str) -> None:
        self.extract = extract
        self.lines = source.splitlines()
        self._fleet_lines = {
            number for number, line in enumerate(self.lines, start=1)
            if _FLEET_ANNOTATION.search(line)}
        self._scopes: List[_Scope] = []
        self._loop_depth = 0

    # -- scope helpers --------------------------------------------------

    def _enter(self, name: str) -> None:
        outer = self._scopes[-1].prefix if self._scopes else ""
        prefix = outer + "." + name if outer else name
        self._scopes.append(_Scope(prefix))

    def _exit(self, node: ast.AST, is_function: bool) -> None:
        scope = self._scopes.pop()
        if is_function:
            mutations = [name for name in scope.mutations
                         if name not in scope.binds
                         or name in scope.globals]
            mutations.extend(name for name in sorted(scope.globals)
                             if name in scope.binds)
            if scope.accumulates:
                self.extract.accumulators.append(scope.prefix)
            self.extract.functions.append(FunctionNode(
                qualname=scope.prefix,
                name=scope.prefix.rsplit(".", 1)[-1],
                start=node.lineno,
                end=getattr(node, "end_lineno", node.lineno),
                calls=tuple(scope.calls), refs=tuple(scope.refs),
                callbacks=tuple(scope.callbacks),
                mutations=tuple(dict.fromkeys(mutations))))
        elif self._scopes:
            # Class scope: fold leftovers into the enclosing scope so
            # class-body calls still produce edges.
            outer = self._scopes[-1]
            outer.calls.extend(scope.calls)
            outer.refs.extend(scope.refs)
            outer.callbacks.extend(scope.callbacks)
            outer.mutations.extend(scope.mutations)

    def _record(self, kind: str, name: Optional[str]) -> None:
        if name is not None and self._scopes:
            getattr(self._scopes[-1], kind).append(name)

    @property
    def _at_module_level(self) -> bool:
        return len(self._scopes) == 1

    # -- visitors -------------------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        self._scopes.append(_Scope(""))
        self.generic_visit(node)
        self._scopes.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node.name)
        self.generic_visit(node)
        self._exit(node, is_function=False)

    def _visit_function(self, node: ast.AST, name: str) -> None:
        self._enter(name)
        args = getattr(node, "args", None)
        if args is not None:
            scope = self._scopes[-1]
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs,
                        args.vararg, args.kwarg):
                if arg is not None:
                    scope.binds.add(arg.arg)
        self._note_function_annotations(node)
        outer_depth, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = outer_depth
        self._exit(node, is_function=True)

    def _note_function_annotations(self, node: ast.AST) -> None:
        """Pick up merge-fn / canonical-json markers on the signature.

        Accepted placements: the line directly above the first
        decorator (or the ``def`` when undecorated), any decorator
        line, and any line of the ``def`` signature itself.
        """
        start = node.lineno  # type: ignore[attr-defined]
        decorators = getattr(node, "decorator_list", None) or ()
        for decorator in decorators:
            start = min(start, decorator.lineno)
        body = getattr(node, "body", None)
        end = body[0].lineno - 1 if body else start
        qualname = self._scopes[-1].prefix
        for lineno in range(max(start - 1, 1), max(end, start) + 1):
            line = self.lines[lineno - 1]
            match = _MERGE_ANNOTATION.search(line)
            if match and all(q != qualname
                             for q, _ in self.extract.merge_fns):
                self.extract.merge_fns.append(
                    (qualname, match.group(1) or "ordered"))
            if _CANONICAL_ANNOTATION.search(line) \
                    and qualname not in self.extract.canonical_fns:
                self.extract.canonical_fns.append(qualname)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    # Lambdas stay part of the enclosing function's scope: their calls
    # become the encloser's edges, which is what a callback closure is.

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "root_seed" and isinstance(node.ctx, ast.Load):
            self.extract.root_seed_reads.append(node.lineno)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Store) and self._scopes:
            self._scopes[-1].binds.add(node.id)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        if self._scopes:
            self._scopes[-1].globals.update(node.names)

    def _note_fleet_scale(self, node: ast.stmt,
                          targets: Sequence[ast.expr]) -> None:
        end = getattr(node, "end_lineno", node.lineno)
        if any(line in self._fleet_lines
               for line in range(node.lineno, end + 1)):
            for target in targets:
                name = _terminal(target)
                if name is not None \
                        and name not in self.extract.fleet_scale:
                    self.extract.fleet_scale.append(name)

    def _note_assignment(self, node: ast.stmt,
                         targets: Sequence[ast.expr],
                         value: Optional[ast.expr]) -> None:
        self._note_fleet_scale(node, targets)
        for target in targets:
            if (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)):
                self._record("mutations", target.value.id)
        if self._at_module_level and value is not None \
                and _is_mutable_value(value):
            for target in targets:
                if isinstance(target, ast.Name) \
                        and target.id not in self.extract.module_mutables:
                    self.extract.module_mutables.append(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._note_assignment(node, node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._note_assignment(node, [node.target], node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_assignment(node, [node.target], None)
        if self._loop_depth > 0 and isinstance(node.op, ast.Add) \
                and self._scopes:
            self._scopes[-1].accumulates = True
        self.generic_visit(node)

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    def visit_Call(self, node: ast.Call) -> None:
        callee = _terminal(node.func)
        self._record("calls", callee)
        if callee in DRAW_METHODS and isinstance(node.func, ast.Attribute):
            self._record_draw(node, callee)
        if callee is not None:
            self._record_callbacks(node, callee)
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)):
            self._record("mutations", node.func.value.id)
        if callee == "submit" and node.args:
            name = _terminal(node.args[0])
            if name is not None:
                self.extract.worker_roots.append(name)
            if any(isinstance(arg, ast.Lambda) for arg in node.args):
                self.extract.worker_lambdas.append(node.lineno)
        for keyword in node.keywords:
            if keyword.arg == "initializer":
                name = _terminal(keyword.value)
                if name is not None:
                    self.extract.worker_inits.append(name)
        # Any bare function reference in an argument is address-taken.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._record("refs", _terminal(arg))
        self.generic_visit(node)

    # -- extraction details ---------------------------------------------

    def _record_callbacks(self, node: ast.Call, callee: str) -> None:
        slot = _CALLBACK_SLOTS.get(callee)
        candidates: List[ast.expr] = []
        if slot is not None:
            index, keywords = slot
            if len(node.args) > index:
                candidates.append(node.args[index])
            candidates.extend(kw.value for kw in node.keywords
                              if kw.arg in keywords)
        elif _LISTENER_CALL.match(callee):
            candidates.extend(node.args)
            candidates.extend(kw.value for kw in node.keywords)
        for candidate in candidates:
            if isinstance(candidate, ast.Lambda):
                for inner in ast.walk(candidate.body):
                    if isinstance(inner, ast.Call):
                        self._record("callbacks", _terminal(inner.func))
                    elif isinstance(inner, (ast.Name, ast.Attribute)):
                        self._record("callbacks", _terminal(inner))
            else:
                self._record("callbacks", _terminal(candidate))

    def _record_draw(self, node: ast.Call, method: str) -> None:
        tokens: List[Optional[str]] = []
        for arg in node.args:
            if isinstance(arg, ast.Constant) \
                    and isinstance(arg.value, (str, int)):
                tokens.append(str(arg.value))
            elif isinstance(arg, ast.Starred):
                tokens.append(None)
            else:
                tokens.append(None)
        end_line = getattr(node, "end_lineno", node.lineno)
        annotation = None
        for lineno in range(node.lineno, min(end_line + 1,
                                             len(self.lines) + 1)):
            match = _SUBSTREAM_ANNOTATION.search(self.lines[lineno - 1])
            if match:
                annotation = match.group(1)
                break
        self.extract.draws.append(DrawSite(
            path=self.extract.path, module=self.extract.module,
            line=node.lineno, end_line=end_line, col=node.col_offset,
            method=method, tokens=tuple(tokens),
            func=self._scopes[-1].prefix if self._scopes else "",
            annotation=annotation))


def extract_module(path: str, module: str, source: str) -> ModuleExtract:
    """AST-walk one module into its :class:`ModuleExtract`."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise LintEngineError(f"cannot parse {path}: {error}") from error
    extract = ModuleExtract(path=path, module=module)
    _ModuleVisitor(extract, source).visit(tree)
    return extract


class ProgramGraph:
    """The whole-program view: modules, call edges, hot set, draws."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleExtract] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        #: path -> sorted (start, end, qualname) intervals of hot code.
        self._hot: Dict[str, List[Tuple[int, int, str]]] = {}
        self._hot_names: Set[str] = set()
        #: Lazily-computed merge/digest-path intervals (numeric tier).
        self._numeric: Optional[
            Dict[str, List[Tuple[int, int, str]]]] = None
        #: Memoized worker-reachable set (graph is immutable once built).
        self._workers: Optional[Set[Tuple[str, str]]] = None

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, paths: Sequence[Path],
              cache_path: Optional[Path] = None) -> "ProgramGraph":
        """Analyze every Python file under ``paths`` (files or dirs)."""
        graph = cls()
        cache = graph._load_cache(cache_path)
        cached_files = cache.get("files", {})
        new_cache_files: Dict[str, object] = {}
        for root in paths:
            root = Path(root)
            if not root.exists():
                raise LintEngineError(f"no such file or directory: {root}")
            for file_path in iter_python_files(root):
                key = str(file_path)
                source = read_source(file_path)
                digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
                entry = cached_files.get(key)
                if entry is not None and entry.get("sha") == digest:
                    extract = ModuleExtract.from_json(entry["extract"])
                    graph.cache_hits += 1
                else:
                    extract = extract_module(
                        key, module_name_for(file_path), source)
                    graph.cache_misses += 1
                graph.modules[key] = extract
                new_cache_files[key] = {"sha": digest,
                                        "extract": extract.to_json()}
        graph._infer_hot_paths()
        if cache_path is not None:
            graph._save_cache(cache_path, new_cache_files)
        return graph

    @classmethod
    def from_source(cls, source: str,
                    path: str = "src/repro/example.py") -> "ProgramGraph":
        """Single-module graph (test fixtures)."""
        graph = cls()
        extract = extract_module(path, module_name_for(Path(path)), source)
        graph.modules[path] = extract
        graph.cache_misses = 1
        graph._infer_hot_paths()
        return graph

    # -- cache ----------------------------------------------------------

    def _load_cache(self, cache_path: Optional[Path]) -> Dict[str, Dict]:
        if cache_path is None or not Path(cache_path).exists():
            return {}
        try:
            data = json.loads(Path(cache_path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if data.get("version") != CACHE_VERSION:
            return {}
        return data

    def _save_cache(self, cache_path: Path,
                    files: Dict[str, object]) -> None:
        payload = json.dumps({"version": CACHE_VERSION, "files": files},
                             sort_keys=True)
        try:
            Path(cache_path).write_text(payload, encoding="utf-8")
        except OSError as error:
            raise LintEngineError(
                f"cannot write cache {cache_path}: {error}") from error

    # -- hot-path inference ---------------------------------------------

    def _infer_hot_paths(self) -> None:
        """Mark every function reachable from event handlers/chaos gates.

        Roots: every callback handed to the kernel or a listener
        registration anywhere in the program, plus the chaos gate
        methods of modules under ``repro.chaos``. Edges: name-level
        calls *and* address-taken references (a function a hot function
        merely holds may still be invoked from the event path).
        """
        by_name: Dict[str, List[Tuple[str, FunctionNode]]] = {}
        for path, extract in self.modules.items():
            for function in extract.functions:
                by_name.setdefault(function.name, []).append(
                    (path, function))

        roots: Set[Tuple[str, str]] = set()
        for path, extract in self.modules.items():
            for function in extract.functions:
                for callback in function.callbacks:
                    for target_path, target in by_name.get(callback, ()):
                        roots.add((target_path, target.qualname))
            if extract.module == "repro.chaos" \
                    or extract.module.startswith("repro.chaos."):
                for function in extract.functions:
                    if function.name in CHAOS_GATES:
                        roots.add((path, function.qualname))

        index: Dict[Tuple[str, str], FunctionNode] = {
            (path, function.qualname): function
            for path, extract in self.modules.items()
            for function in extract.functions}

        seen: Set[Tuple[str, str]] = set()
        frontier = sorted(roots)
        while frontier:
            key = frontier.pop()
            if key in seen or key not in index:
                continue
            seen.add(key)
            function = index[key]
            for name in (*function.calls, *function.refs,
                         *function.callbacks):
                for target_path, target in by_name.get(name, ()):
                    candidate = (target_path, target.qualname)
                    if candidate not in seen:
                        frontier.append(candidate)

        for path, qualname in seen:
            function = index[(path, qualname)]
            self._hot.setdefault(path, []).append(
                (function.start, function.end, qualname))
            self._hot_names.add(
                f"{self.modules[path].module}:{qualname}")
        for intervals in self._hot.values():
            intervals.sort()

    # -- queries --------------------------------------------------------

    def is_hot(self, path: str, line: int) -> bool:
        """Whether ``line`` of ``path`` lies inside a hot function."""
        for start, end, _ in self._hot.get(path, ()):
            if start <= line <= end:
                return True
        return False

    def hot_functions(self) -> Tuple[str, ...]:
        """Sorted ``module:qualname`` labels of the inferred hot set."""
        return tuple(sorted(self._hot_names))

    def hot_intervals(self) -> Dict[str, List[Tuple[int, int, str]]]:
        """path -> sorted (start, end, qualname) hot-code intervals."""
        return {path: list(intervals)
                for path, intervals in self._hot.items()}

    def fleet_scale_names(self) -> Set[str]:
        """Every name annotated ``# totolint: fleet-scale``, program-wide."""
        return {name for extract in self.modules.values()
                for name in extract.fleet_scale}

    def worker_initializer_names(self) -> Set[str]:
        """Names passed as a pool ``initializer=`` anywhere."""
        return {name for extract in self.modules.values()
                for name in extract.worker_inits}

    def worker_functions(self) -> Set[Tuple[str, str]]:
        """(path, qualname) of every function that can run in a pool worker.

        Roots: functions submitted to a pool (``pool.submit(f, ...)``)
        or installed as its ``initializer=``.  Edges are the same
        name-level over-approximation the hot-set inference uses.
        """
        if self._workers is not None:
            return set(self._workers)
        roots = {name for extract in self.modules.values()
                 for name in (*extract.worker_roots,
                              *extract.worker_inits)}
        by_name: Dict[str, List[Tuple[str, FunctionNode]]] = {}
        index: Dict[Tuple[str, str], FunctionNode] = {}
        for path, extract in self.modules.items():
            for function in extract.functions:
                by_name.setdefault(function.name, []).append(
                    (path, function))
                index[(path, function.qualname)] = function

        seen: Set[Tuple[str, str]] = set()
        frontier = sorted(
            (path, function.qualname)
            for name in roots
            for path, function in by_name.get(name, ()))
        while frontier:
            key = frontier.pop()
            if key in seen:
                continue
            seen.add(key)
            function = index[key]
            for name in (*function.calls, *function.refs,
                         *function.callbacks):
                for target_path, target in by_name.get(name, ()):
                    candidate = (target_path, target.qualname)
                    if candidate not in seen:
                        frontier.append(candidate)
        self._workers = seen
        return set(seen)

    def merge_functions(self) -> Dict[Tuple[str, str], str]:
        """``(path, qualname) -> sensitivity`` of every merge-fn.

        The static half of the merge registry: the functions annotated
        ``# totolint: merge-fn`` that TL034 checks for left-fold
        conformance and FloatSan wraps at runtime.
        """
        found: Dict[Tuple[str, str], str] = {}
        for path, extract in sorted(self.modules.items()):
            for qualname, sensitivity in extract.merge_fns:
                found[(path, qualname)] = sensitivity
        return found

    def canonical_sink_names(self) -> Set[str]:
        """Terminal names of ``# totolint: canonical-json`` functions."""
        return {qualname.rsplit(".", 1)[-1]
                for extract in self.modules.values()
                for qualname in extract.canonical_fns}

    def float_accumulators(self) -> Set[Tuple[str, str]]:
        """(path, qualname) of functions that ``+=``-accumulate in a loop."""
        return {(path, qualname)
                for path, extract in self.modules.items()
                for qualname in extract.accumulators}

    def numeric_intervals(self) -> Dict[str, List[Tuple[int, int, str]]]:
        """path -> (start, end, qualname) intervals of merge/digest paths.

        The scope of the numeric-determinism tier: registered merge
        helpers, canonical-JSON sinks, and their direct callers or
        referrers — the code that *feeds* values into a merged KPI or
        golden digest.  Deliberately one hop, not a closure: a model
        reducing over its own in-shard array is deterministic however
        it folds; only the cross-shard aggregation step must pin an
        order.  Computed lazily and memoized — the graph is immutable
        once built.
        """
        cached = self._numeric
        if cached is not None:
            return {path: list(intervals)
                    for path, intervals in cached.items()}

        merge_names = {qualname.rsplit(".", 1)[-1]
                       for extract in self.modules.values()
                       for qualname, _ in extract.merge_fns}
        anchor_names = merge_names | self.canonical_sink_names()

        numeric: Dict[str, List[Tuple[int, int, str]]] = {}
        for path, extract in self.modules.items():
            anchors = {qualname for qualname, _ in extract.merge_fns}
            anchors.update(extract.canonical_fns)
            for function in extract.functions:
                if function.qualname in anchors or any(
                        name in anchor_names
                        for name in (*function.calls, *function.refs)):
                    numeric.setdefault(path, []).append(
                        (function.start, function.end,
                         function.qualname))
        for intervals in numeric.values():
            intervals.sort()
        self._numeric = numeric
        return {path: list(intervals) for path, intervals in numeric.items()}

    def is_numeric(self, path: str, line: int) -> bool:
        """Whether ``line`` of ``path`` lies on a merge/digest path."""
        intervals = self._numeric
        if intervals is None:
            self.numeric_intervals()
            intervals = self._numeric or {}
        for start, end, _ in intervals.get(path, ()):
            if start <= line <= end:
                return True
        return False

    def canonical_intervals(self, path: str) -> List[Tuple[int, int, str]]:
        """(start, end, qualname) of canonical-JSON sinks in ``path``."""
        extract = self.modules.get(path)
        if extract is None:
            return []
        spans = []
        for function in extract.functions:
            if function.qualname in extract.canonical_fns:
                spans.append((function.start, function.end,
                              function.qualname))
        return sorted(spans)

    def draw_sites(self) -> Tuple[DrawSite, ...]:
        """Every draw site in the program, in stable (path, line) order."""
        return tuple(sorted(
            (draw for extract in self.modules.values()
             for draw in extract.draws),
            key=lambda d: (d.path, d.line, d.col)))

    def covers(self, path: str) -> bool:
        return path in self.modules
