"""Reporters: human text and machine JSON for lint results.

The JSON document shape is versioned and stable — CI parses it and the
artifact is diffed across runs, so field names and ordering must not
drift. Violations are already sorted by the engine
(path, line, col, rule).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.engine import LintReport


def format_text(report: LintReport, verbose: bool = False) -> str:
    """Human-readable report, one violation per line."""
    lines: List[str] = [violation.format()
                        for violation in report.violations]
    if report.clean:
        lines.append(f"totolint: {report.files_checked} files checked, "
                     "no violations")
    else:
        tally = ", ".join(f"{code} x{count}"
                          for code, count in report.counts().items())
        lines.append(f"totolint: {report.files_checked} files checked, "
                     f"{len(report.violations)} violations ({tally})")
    if report.cache_hits or report.cache_misses:
        lines.append(f"totolint: program graph: "
                     f"{report.hot_functions} hot functions, "
                     f"{report.registry_size} registry substreams, "
                     f"cache hits {report.cache_hits} / "
                     f"misses {report.cache_misses}")
    if report.baselined:
        lines.append(f"totolint: {report.baselined} finding(s) absorbed "
                     "by the baseline ratchet")
    if verbose and not report.clean:
        lines.append("suppress a finding with "
                     "`# totolint: disable=<RULE>` on the flagged line")
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Stable JSON document (see docs/STATIC_ANALYSIS.md for the schema).

    ::

        {
          "version": 1,
          "tool": "totolint",
          "files_checked": 104,
          "violation_count": 0,
          "counts": {"TL001": 0-n, ...},
          "violations": [
            {"rule", "path", "line", "col", "message"}, ...
          ]
        }
    """
    document: Dict[str, object] = {
        "version": 1,
        "tool": "totolint",
        "files_checked": report.files_checked,
        "violation_count": len(report.violations),
        "counts": report.counts(),
        "violations": [
            {"rule": violation.rule, "path": violation.path,
             "line": violation.line, "col": violation.col,
             "message": violation.message}
            for violation in report.violations
        ],
        # Additive (version stays 1): whole-program pass statistics.
        "program": {
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "registry_size": report.registry_size,
            "hot_functions": report.hot_functions,
            "baselined": report.baselined,
        },
    }
    return json.dumps(document, indent=2, sort_keys=False)
