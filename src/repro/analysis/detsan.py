"""DetSan: the runtime determinism sanitizer.

The static half of the determinism contract lives in
:mod:`repro.analysis.registry` — every RNG substream the program can
draw, proven by whole-program analysis.  DetSan is the runtime half: a
:class:`DetSanRecorder` threaded through :class:`~repro.rng.RngRegistry`
and :class:`~repro.simkernel.kernel.SimulationKernel` appends every
stream acquisition, every generator draw, and every event scheduling
into one ordered ledger.  A verified run
(:func:`verify_run`, ``repro run --detsan``) then checks two things:

1. **Static coverage** — every observed stream acquisition matches a
   registry entry by *site* (the ``stream()`` call location is a known
   :class:`~repro.analysis.graph.DrawSite`) and by *name* (the
   ``"/"``-joined runtime tokens satisfy the site's literal key or
   declared ``substream=`` pattern).  Randomness entering the program
   anywhere the analyzer cannot see is a finding.
2. **Replay identity** — the scenario is executed a second time in the
   same process and the two ledgers must match entry for entry.  The
   first mismatch is reported with its index, both entries, and the
   trailing context (:class:`Divergence`) — "the first mismatching
   draw", not just "fingerprints differ".

Recording is strictly opt-in: with no recorder attached, the only cost
in the hot paths is one ``is None`` test.
"""

from __future__ import annotations

import hashlib
import sys
from dataclasses import dataclass, field
from pathlib import Path
from types import FrameType
from typing import Any, Dict, List, Optional, Sequence, Tuple

import repro.rng

#: Frames inside these files are the RNG plumbing itself, never the
#: draw site we want to attribute (e.g. ``fork`` delegating to
#: ``derive_seed``).
_PLUMBING_FILES = (repro.rng.__file__, __file__)

#: One ledger entry; the first element is the entry kind:
#: ``("stream", method, name, file, line)`` — a stream/seed acquisition,
#: ``("draw", name, method, file, line)``   — one generator method call,
#: ``("event", time, label)``               — one kernel scheduling.
LedgerEntry = Tuple[Any, ...]


def _caller_site() -> Tuple[str, int]:
    """(file, line) of the nearest caller outside the RNG plumbing."""
    frame: Optional[FrameType] = sys._getframe(1)
    while frame is not None \
            and frame.f_code.co_filename in _PLUMBING_FILES:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - _getframe always has a caller
        return ("<unknown>", 0)
    return (frame.f_code.co_filename, frame.f_lineno)


class RecordingGenerator:
    """Proxy around :class:`numpy.random.Generator` that logs draws.

    Attribute access delegates to the wrapped generator; callables are
    wrapped so each invocation appends a ``("draw", ...)`` ledger entry
    with the caller's source location before delegating.
    """

    __slots__ = ("_generator", "_stream_name", "_recorder")

    def __init__(self, generator: Any, stream_name: str,
                 recorder: "DetSanRecorder") -> None:
        self._generator = generator
        self._stream_name = stream_name
        self._recorder = recorder

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._generator, attr)
        if not callable(value):
            return value
        recorder = self._recorder
        stream_name = self._stream_name

        def recorded(*args: Any, **kwargs: Any) -> Any:
            file, line = _caller_site()
            recorder.entries.append(
                ("draw", stream_name, attr, file, line))
            return value(*args, **kwargs)

        return recorded


class DetSanRecorder:
    """The ordered ledger of one instrumented run.

    Implements the duck-typed recorder protocol :mod:`repro.rng` and
    the kernel expect: :meth:`acquire`, :meth:`acquire_seed`,
    :meth:`record_event`.
    """

    def __init__(self) -> None:
        self.entries: List[LedgerEntry] = []
        #: One proxy per spawn key so ``a is rng.stream(...)`` still
        #: holds under instrumentation.
        self._proxies: Dict[Tuple[int, ...], RecordingGenerator] = {}

    # -- protocol used by repro.rng --------------------------------------

    def acquire(self, key: Tuple[int, ...], method: str,
                name: Tuple[Any, ...], generator: Any) -> Any:
        """Record a ``stream()`` acquisition; return the draw proxy."""
        joined = "/".join(str(token) for token in name)
        file, line = _caller_site()
        self.entries.append(("stream", method, joined, file, line))
        proxy = self._proxies.get(key)
        if proxy is None:
            proxy = RecordingGenerator(generator, joined, self)
            self._proxies[key] = proxy
        return proxy

    def acquire_seed(self, method: str, name: Tuple[Any, ...],
                     seed: int) -> None:
        """Record a ``derive_seed()`` / ``fork()`` scalar derivation."""
        joined = "/".join(str(token) for token in name)
        file, line = _caller_site()
        self.entries.append(("stream", method, joined, file, line))

    # -- protocol used by the simulation kernel --------------------------

    def record_event(self, time: int, label: Any) -> None:
        """Record one scheduling (labels resolved eagerly)."""
        self.entries.append(
            ("event", time, label() if callable(label) else str(label)))

    # -- ledger digestion ------------------------------------------------

    def fingerprint(self) -> str:
        """Order-sensitive sha256 over the full ledger."""
        digest = hashlib.sha256()
        for entry in self.entries:
            digest.update(repr(entry).encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def acquisitions(self) -> List[Tuple[str, str, str, int]]:
        """Unique observed (method, name, file, line) acquisitions."""
        seen = []
        for entry in self.entries:
            if entry[0] == "stream":
                record = (entry[1], entry[2], entry[3], entry[4])
                if record not in seen:
                    seen.append(record)
        return seen


@dataclass(frozen=True)
class Divergence:
    """First point where two ledgers disagree."""

    index: int
    first: Optional[LedgerEntry]
    second: Optional[LedgerEntry]
    context: Tuple[LedgerEntry, ...]

    def format(self) -> str:
        lines = [f"first divergence at ledger entry {self.index}:",
                 f"  run 1: {self.first!r}",
                 f"  run 2: {self.second!r}"]
        if self.context:
            lines.append("  preceding entries (both runs agree):")
            lines.extend(f"    {entry!r}" for entry in self.context)
        return "\n".join(lines)


def compare_ledgers(first: Sequence[LedgerEntry],
                    second: Sequence[LedgerEntry],
                    context: int = 3) -> Optional[Divergence]:
    """The first mismatch between two ledgers, or ``None`` if identical."""
    for index in range(max(len(first), len(second))):
        a = first[index] if index < len(first) else None
        b = second[index] if index < len(second) else None
        if a != b:
            return Divergence(
                index=index, first=a, second=b,
                context=tuple(first[max(0, index - context):index]))
    return None


@dataclass
class DetSanReport:
    """Outcome of one verified (``--detsan``) run."""

    entries: int
    fingerprint: str
    replay_fingerprint: str
    registry_size: int
    acquisitions: int
    divergence: Optional[Divergence] = None
    #: Acquisitions whose call site is not a static DrawSite.
    unknown_sites: List[str] = field(default_factory=list)
    #: Acquisitions whose runtime name matches no registry pattern.
    unknown_names: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (self.divergence is None and not self.unknown_sites
                and not self.unknown_names)

    def format(self) -> str:
        lines = [
            f"detsan: {self.entries} ledger entries, "
            f"{self.acquisitions} stream acquisitions, "
            f"registry of {self.registry_size} static sites",
            f"detsan: run fingerprint    {self.fingerprint}",
            f"detsan: replay fingerprint {self.replay_fingerprint}",
        ]
        if self.divergence is not None:
            lines.append("detsan: REPLAY DIVERGENCE")
            lines.append(self.divergence.format())
        for site in self.unknown_sites:
            lines.append(f"detsan: UNKNOWN SITE {site} — acquisition at "
                         "a location the static registry does not know")
        for name in self.unknown_names:
            lines.append(f"detsan: UNKNOWN NAME {name} — no registry "
                         "pattern covers this substream")
        if self.ok:
            lines.append("detsan: OK — replay identical, every "
                         "acquisition statically known")
        return "\n".join(lines)


def verify_run(scenario: Any,
               registry_paths: Optional[Sequence[Path]] = None,
               cache_path: Optional[Path] = None) -> Tuple[Any, DetSanReport]:
    """Run ``scenario`` twice under DetSan and cross-check the ledgers.

    Returns ``(result, report)`` where ``result`` is the first run's
    :class:`~repro.core.runner.BenchmarkResult`.  The import of the
    runner is deferred so this module stays importable from the
    analysis layer without dragging in the whole simulator.
    """
    from repro.analysis.graph import ProgramGraph
    from repro.analysis.registry import SubstreamRegistry
    from repro.core.runner import run_scenario

    if registry_paths is None:
        registry_paths = [Path(repro.rng.__file__).resolve().parent]
    graph = ProgramGraph.build(registry_paths, cache_path=cache_path)
    registry = SubstreamRegistry(graph)

    first = DetSanRecorder()
    result = run_scenario(scenario, detsan=first)
    second = DetSanRecorder()
    run_scenario(scenario, detsan=second)

    report = DetSanReport(
        entries=len(first.entries),
        fingerprint=first.fingerprint(),
        replay_fingerprint=second.fingerprint(),
        registry_size=len(registry),
        acquisitions=len(first.acquisitions()),
        divergence=compare_ledgers(first.entries, second.entries),
    )
    for method, name, file, line in first.acquisitions():
        site = registry.match_site(file, line)
        if site is None:
            report.unknown_sites.append(f"{file}:{line} ({method} {name})")
            continue
        if name and registry.match_name(name) is None:
            report.unknown_names.append(f"{name} at {file}:{line}")
    return result, report
