"""repro — a reproduction of *Toto: Benchmarking the Efficiency of a
Cloud Service* (Moeller, Ye, Lin, Lang; SIGMOD 2021).

Toto benchmarks the *efficiency* of an orchestrated cloud service by
hijacking the resource-metric channel between application instances
and the cluster orchestrator, replaying production-trained behaviour
models instead of real utilization. This package implements the whole
stack in Python: a Service-Fabric-like orchestrator substrate, an
Azure-SQL-DB-like service substrate, Toto's orchestrator + Population
Manager, the statistical model-training framework, and the full
density-study evaluation.

Quickstart::

    from repro import run_scenario
    from repro.experiments.scenarios import paper_scenario

    result = run_scenario(paper_scenario(density=1.2, days=1))
    print(result.kpis)

See README.md for the architecture overview and EXPERIMENTS.md for the
per-figure reproduction record.
"""

from repro.core import (
    BenchmarkResult,
    BenchmarkRunner,
    BenchmarkScenario,
    PopulationManager,
    TotoModelDocument,
    TotoOrchestrator,
    run_scenario,
)
from repro.errors import ReproError
from repro.rng import RngRegistry
from repro.simkernel import SimulationKernel
from repro.sqldb import Edition, TenantRing, TenantRingConfig

__version__ = "1.0.0"

__all__ = [
    "BenchmarkResult",
    "BenchmarkRunner",
    "BenchmarkScenario",
    "Edition",
    "PopulationManager",
    "ReproError",
    "RngRegistry",
    "SimulationKernel",
    "TenantRing",
    "TenantRingConfig",
    "TotoModelDocument",
    "TotoOrchestrator",
    "__version__",
    "run_scenario",
]
