"""Pluggable orchestrator backends: the contract and the registry.

The paper's efficiency numbers are properties of one fixed control
plane — the simulated-annealing PLB plus Service Fabric's naming and
failover machinery (§3.1). ROADMAP item 3 calls for comparing
*orchestration policies*, not just hardware, so the surfaces the rest
of the system actually exercises are extracted into
:class:`OrchestratorBackend`:

* ``find_placement`` / ``make_room`` — admission-time placement
  (:meth:`repro.fabric.cluster.ServiceFabricCluster.create_service`);
* ``fix_violations`` — the periodic capacity-violation sweep;
* ``choose_target`` — failover target selection (node failures and
  pending-replica retries);
* ``replica_count_for`` — replica-set sizing for an SLO request;
* ``register_service`` / ``unregister_service`` — naming-registration
  hooks (the annealing backend registers nothing, preserving the
  seed's metastore traffic byte for byte; the Kubernetes-style backend
  publishes endpoint records);
* ``bootstrap_spill`` — the swap-based last resort for a wedged
  bootstrap placement (shared mechanics, below).

Backends self-register under a name and are selected per ring via
``TenantRingConfig.backend`` / ``ClusterTemplate.backend`` /
``repro run --backend``. Registered backends:

* ``annealing`` — :class:`repro.fabric.plb.PlacementAndLoadBalancer`,
  the reference implementation (byte-identical to the pre-refactor
  seed);
* ``k8s`` — :class:`repro.fabric.k8s.KubernetesBackend`, a
  Kubernetes-style scheduler (requests/limits, least-requested
  scoring, priority preemption; docs/ORCHESTRATORS.md).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FabricError
from repro.fabric.failover import (
    REASON_CAPACITY_VIOLATION,
    REASON_MAKE_ROOM,
    FailoverRecord,
    failover_downtime,
    rebuild_seconds,
)
from repro.fabric.metrics import CPU_CORES, DISK_GB, MEMORY_GB
from repro.fabric.node import Node
from repro.fabric.replica import Replica, ReplicaRole

if TYPE_CHECKING:  # pragma: no cover — import cycle is type-only
    from repro.fabric.plb import ClusterView, PlbStats

#: Cap on replica *swaps* the bootstrap spill performs per blocked
#: placement; one swap normally frees hundreds of GB and dozens of
#: cores on the freed node, so the cap is generous.
MAX_SPILL_SWAPS = 8

#: Deterministic scan bounds for the spill's swap search. The search
#: runs only when bootstrap placement is already wedged (rare), but at
#: 640 nodes an unbounded quadruple loop could still scan millions of
#: replica pairs; the bounds keep the scan proportional to the cluster
#: width while the sort orders put the most promising pairs first.
_SPILL_HOST_SCAN = 16
_SPILL_REPLICA_SCAN = 4
_SPILL_DONOR_SCAN = 32
_SPILL_INCOMING_SCAN = 8


class OrchestratorBackend:
    """The contract every orchestrator backend implements.

    Policy methods (placement, balancing, target selection) are
    abstract; the mechanics every policy shares — feasibility checks,
    the replica-move bookkeeping with its downtime/rebuild accounting,
    and the bootstrap spill — live here so backends differ only where
    their policies do.

    Concrete backends set ``self._nodes`` (the cluster's live node
    list), ``self._rng`` (the backend's decision stream),
    ``self._downtime_rng`` (the shared ``("failover", "downtime")``
    substream) and ``self.stats`` (a
    :class:`repro.fabric.plb.PlbStats`) in ``__init__``.
    """

    #: Registry name of the backend (e.g. ``"annealing"``).
    name: str = ""

    _nodes: List[Node]
    _rng: np.random.Generator
    _downtime_rng: np.random.Generator
    stats: "PlbStats"

    # ------------------------------------------------------------------
    # Policy surface (implemented by each backend)
    # ------------------------------------------------------------------

    def find_placement(self, service_id: str, replica_count: int,
                       loads: Dict[str, float]) -> List[int]:
        """Choose ``replica_count`` distinct node ids for a new service."""
        raise NotImplementedError

    def make_room(self, now: int, service_id: str, replica_count: int,
                  loads: Dict[str, float],
                  cluster: "ClusterView") -> List[FailoverRecord]:
        """Relocate replicas so a blocked placement becomes feasible."""
        raise NotImplementedError

    def fix_violations(self, now: int, cluster: "ClusterView",
                       metric: str = DISK_GB) -> List[FailoverRecord]:
        """Move replicas off nodes whose ``metric`` load exceeds capacity."""
        raise NotImplementedError

    def choose_target(self, replica: Replica,
                      source: Node) -> Optional[Node]:
        """Target selection for externally driven moves (node failures)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Sizing and naming hooks (defaults preserve the seed's behaviour)
    # ------------------------------------------------------------------

    def replica_count_for(self, requested: int,
                          loads: Dict[str, float]) -> int:
        """Replica-set size for a request; the default honours the SLO.

        Both shipped backends return ``requested`` unchanged — the SLO
        replica count is what admission control charged cores for and
        what the revenue model bills — but the surface exists so a
        policy *could* size replica sets from load.
        """
        return requested

    def register_service(self, naming, service_id: str,
                         node_ids: Sequence[int]) -> None:
        """Called after a successful placement; may publish endpoints."""

    def unregister_service(self, naming, service_id: str) -> None:
        """Called after a service is dropped."""

    # ------------------------------------------------------------------
    # Shared mechanics
    # ------------------------------------------------------------------

    def _feasible_nodes(self, service_id: str,
                        loads: Dict[str, float]) -> List[Node]:
        """Nodes that could host one more replica of the service."""
        return [node for node in self._nodes
                if self._fits(node, loads)
                and not node.hosts_service(service_id)]

    def _fits(self, node: Node, loads: Dict[str, float]) -> bool:
        """Whether a replica with ``loads`` fits within node capacity."""
        if not node.available:
            return False
        for metric in (CPU_CORES, DISK_GB, MEMORY_GB):
            needed = loads.get(metric, 0.0)
            if needed > 0 and node.free(metric) < needed:
                return False
        return True

    def _move(self, now: int, replica: Replica, source: Node, target: Node,
              metric: str, cluster: "ClusterView",
              reason: str = REASON_CAPACITY_VIOLATION) -> FailoverRecord:
        """Execute the move and produce its record."""
        replica_count = cluster.replica_count_of(replica.service_id)
        downtime = failover_downtime(replica, replica_count,
                                     self._downtime_rng,
                                     planned=reason == REASON_MAKE_ROOM)
        rebuild = rebuild_seconds(replica.load(DISK_GB), replica_count)
        role_at_move = replica.role

        # Rebuild-window vulnerability: while a previous move's replica
        # rebuild is still copying data, the service has no fully built
        # secondary. Forcing the *primary* out during that window means
        # waiting for the rebuild to finish — minutes of unavailability
        # instead of a quick promotion. This is what makes failover
        # storms (many moves hitting the same services in a short span)
        # so much more damaging than isolated failovers.
        rebuilding_until = cluster.rebuilding_until(replica.service_id)
        if (replica_count > 1 and role_at_move is ReplicaRole.PRIMARY
                and rebuilding_until > now
                and reason == REASON_CAPACITY_VIOLATION):
            downtime = max(downtime,
                           float(min(rebuilding_until - now, 3600)))
        if replica_count > 1 and rebuild > 0:
            cluster.set_rebuilding(replica.service_id,
                                   int(now + rebuild))

        source.detach(replica)
        # A moved primary of a multi-replica service is demoted: one of
        # the surviving secondaries is promoted in its place (§3.1).
        if role_at_move is ReplicaRole.PRIMARY and replica_count > 1:
            cluster.promote_new_primary(replica.service_id,
                                        exclude_replica=replica.replica_id)
            replica.role = ReplicaRole.SECONDARY
        target.attach(replica)
        self.stats.moves += 1

        return FailoverRecord(
            time=now,
            service_id=replica.service_id,
            replica_id=replica.replica_id,
            role=role_at_move,
            from_node=source.node_id,
            to_node=target.node_id,
            metric=metric,
            cores_moved=replica.cpu_cores,
            disk_moved_gb=replica.load(DISK_GB),
            downtime_seconds=downtime,
            rebuild_seconds=rebuild,
            reason=reason,
        )

    # ------------------------------------------------------------------
    # Bootstrap spill (shared across backends)
    # ------------------------------------------------------------------

    def bootstrap_spill(self, now: int, service_id: str,
                        replica_count: int, loads: Dict[str, float],
                        cluster: "ClusterView") -> List[FailoverRecord]:
        """Swap-based last resort for a wedged bootstrap placement.

        Big-first packing to a 90% core target on a wide ring can
        wedge: by the 2-core tail, every node with free cores has no
        free disk and every node with free disk has no free cores, so
        neither a plain retry nor ``make_room`` (which only sheds CPU
        reservations and skips disk-blocked nodes) can open a slot.
        The deadlock is broken by *swapping* a disk-heavy replica off a
        CPU-rich node against a disk-light replica from a disk-rich
        node: both nodes stay within capacity, anti-affinity holds on
        both ends, and the CPU-rich node ends up feasible for the new
        service. Both legs are planned (make-room) moves, so their
        downtime draws come from the shared failover-downtime substream
        and book only graceful-drain seconds.

        Only the bootstrap path calls this; steady-state infeasibility
        must keep producing redirects — that is the KPI the paper
        measures (§5.3.1).
        """
        records: List[FailoverRecord] = []
        for _ in range(MAX_SPILL_SWAPS):
            if len(self._feasible_nodes(service_id, loads)) >= replica_count:
                break
            swap = self._one_spill_swap(now, service_id, loads, cluster)
            if swap is None:
                break
            records.extend(swap)
        return records

    def _one_spill_swap(self, now: int, service_id: str,
                        loads: Dict[str, float], cluster: "ClusterView"
                        ) -> Optional[List[FailoverRecord]]:
        """One feasibility-restoring swap, or ``None`` if no pair exists.

        Deterministic scan: hosts (the nodes to free up) are ordered by
        free CPU descending — the nodes closest to hosting the new
        replica once their disk is relieved — and donors by free disk
        descending, so the most promising pairs are probed first.
        """
        needed_cpu = loads.get(CPU_CORES, 0.0)
        hosts = [node for node in self._nodes
                 if node.available
                 and not node.hosts_service(service_id)
                 and not self._fits(node, loads)
                 and node.free(CPU_CORES) >= needed_cpu]
        hosts.sort(key=_free_cpu_order)
        donors = [node for node in self._nodes if node.available]
        donors.sort(key=_free_disk_order)
        for host in hosts[:_SPILL_HOST_SCAN]:
            outgoing = sorted(
                (r for r in host.replicas  # totolint: disable=TL020
                 if r.load(DISK_GB) > 0.0),
                key=_spill_outgoing_order)
            for r_out in outgoing[:_SPILL_REPLICA_SCAN]:
                for donor in donors[:_SPILL_DONOR_SCAN]:
                    if donor.node_id == host.node_id:
                        continue
                    if donor.hosts_service(r_out.service_id):
                        continue
                    incoming = sorted(donor.replicas,
                                      key=_spill_incoming_order)
                    for r_in in incoming[:_SPILL_INCOMING_SCAN]:
                        if host.hosts_service(r_in.service_id):
                            continue
                        if not self._swap_restores(host, donor, r_out,
                                                   r_in, loads):
                            continue
                        first = self._move(now, r_out, host, donor,
                                           DISK_GB, cluster,
                                           reason=REASON_MAKE_ROOM)
                        second = self._move(now, r_in, donor, host,
                                            CPU_CORES, cluster,
                                            reason=REASON_MAKE_ROOM)
                        self.stats.make_room_moves += 2
                        return [first, second]
        return None

    def _swap_restores(self, host: Node, donor: Node, r_out: Replica,
                       r_in: Replica, loads: Dict[str, float]) -> bool:
        """Post-swap feasibility: host fits ``loads``, donor stays legal."""
        for metric in (CPU_CORES, DISK_GB, MEMORY_GB):
            delta = r_out.load(metric) - r_in.load(metric)
            if host.free(metric) + delta < loads.get(metric, 0.0):
                return False
            if donor.free(metric) - delta < 0.0:
                return False
        return True


# ----------------------------------------------------------------------
# Sort keys (module-level so the spill scan builds no closures, TL020)
# ----------------------------------------------------------------------

def _free_cpu_order(node: Node) -> Tuple[float, int]:
    return (-node.free(CPU_CORES), node.node_id)


def _free_disk_order(node: Node) -> Tuple[float, int]:
    return (-node.free(DISK_GB), node.node_id)


def _spill_outgoing_order(replica: Replica) -> Tuple[float, int]:
    return (-replica.load(DISK_GB), replica.replica_id)


def _spill_incoming_order(replica: Replica) -> Tuple[float, int]:
    return (replica.load(DISK_GB), replica.replica_id)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

BackendFactory = Callable[..., OrchestratorBackend]

_BACKENDS: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a backend factory under ``name`` (import-time)."""
    if name in _BACKENDS:
        raise FabricError(f"backend '{name}' is already registered")
    _BACKENDS[name] = factory


def _ensure_builtin_backends() -> None:
    """Import the built-in backend modules so they self-register."""
    import repro.fabric.k8s  # noqa: F401
    import repro.fabric.plb  # noqa: F401


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted (CLI choices, docs, tests)."""
    _ensure_builtin_backends()
    return tuple(sorted(_BACKENDS))


def create_backend(name: str, nodes: Sequence[Node],
                   rng: np.random.Generator,
                   use_annealing: bool = True,
                   downtime_rng: np.random.Generator = None
                   ) -> OrchestratorBackend:
    """Instantiate the backend registered under ``name``."""
    _ensure_builtin_backends()
    factory = _BACKENDS.get(name)
    if factory is None:
        raise FabricError(
            f"unknown orchestrator backend '{name}' "
            f"(registered: {', '.join(sorted(_BACKENDS))})")
    return factory(nodes=nodes, rng=rng, use_annealing=use_annealing,
                   downtime_rng=downtime_rng)
