"""Cluster nodes with incremental load aggregation.

Paper §3.1: "Every replica of the application reports their load
metrics to the PLB where it aggregates a centralized view of the load
on each node." Aggregates here are maintained incrementally so a
report costs O(metrics), not O(replicas).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.errors import FabricError
from repro.fabric.colstore import ReplicaLoadView
from repro.fabric.metrics import ALL_METRICS, NodeCapacities
from repro.fabric.replica import Replica


class Node:
    """One data-plane node: capacities plus hosted replicas."""

    def __init__(self, node_id: int, capacities: NodeCapacities) -> None:
        self.node_id = node_id
        self.capacities = capacities
        self._replicas: Dict[int, Replica] = {}
        #: Service ids hosted here. Anti-affinity caps it at one
        #: replica per service, so a set gives O(1) ``hosts_service``
        #: — the inner loop of every placement scan at fleet scale.
        self._service_ids: Set[str] = set()
        self._loads: Dict[str, float] = {metric: 0.0 for metric in ALL_METRICS}
        #: True while the node undergoes a (simulated) maintenance
        #: upgrade; collectors may flag its readings as outliers.
        self.in_maintenance = False
        #: False while the node is down (failure injection); the PLB
        #: never places onto or moves replicas to an unavailable node.
        self.available = True

    # -- topology -----------------------------------------------------

    @property
    def replicas(self) -> List[Replica]:
        """Replicas currently hosted on this node."""
        return list(self._replicas.values())

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    def hosts_service(self, service_id: str) -> bool:
        """True if any replica of ``service_id`` lives here (anti-affinity)."""
        return service_id in self._service_ids

    def attach(self, replica: Replica) -> None:
        """Host ``replica`` and add its reported loads to the aggregates."""
        if replica.replica_id in self._replicas:
            raise FabricError(
                f"replica {replica.replica_id} already on node {self.node_id}")
        if self.hosts_service(replica.service_id):
            raise FabricError(
                f"node {self.node_id} already hosts a replica of "
                f"service {replica.service_id}")
        self._replicas[replica.replica_id] = replica
        self._service_ids.add(replica.service_id)
        replica.node_id = self.node_id
        for metric, value in replica.reported.items():
            self._loads[metric] = self._loads.get(metric, 0.0) + value

    def detach(self, replica: Replica) -> None:
        """Remove ``replica`` and subtract its loads from the aggregates."""
        if replica.replica_id not in self._replicas:
            raise FabricError(
                f"replica {replica.replica_id} not on node {self.node_id}")
        del self._replicas[replica.replica_id]
        self._service_ids.discard(replica.service_id)
        replica.node_id = None
        for metric, value in replica.reported.items():
            self._loads[metric] = self._loads.get(metric, 0.0) - value

    # -- load accounting ----------------------------------------------

    def apply_report(self, replica: Replica, loads: Dict[str, float]) -> None:
        """Update a hosted replica's reported loads and the aggregates."""
        if replica.replica_id not in self._replicas:
            raise FabricError(
                f"replica {replica.replica_id} not on node {self.node_id}")
        reported = replica.reported
        if isinstance(reported, ReplicaLoadView):
            # Columnar fast path: one store round trip for the whole
            # report instead of a scalar read+write per metric. The
            # aggregate arithmetic below is unchanged — same values,
            # same per-metric accumulation order — so runs are
            # byte-identical to the scalar path.
            old_values = reported.bulk_update(loads)
            if old_values is not None:
                for (metric, new_value), old_value in zip(loads.items(),
                                                          old_values):
                    self._loads[metric] = (self._loads.get(metric, 0.0)
                                           + new_value - old_value)
                return
        for metric, new_value in loads.items():
            old_value = reported.get(metric, 0.0)
            reported[metric] = new_value
            self._loads[metric] = (self._loads.get(metric, 0.0)
                                   + new_value - old_value)

    def load(self, metric: str) -> float:
        """Aggregate load of ``metric`` on this node."""
        return self._loads.get(metric, 0.0)

    def free(self, metric: str) -> float:
        """Remaining logical capacity for ``metric``."""
        return self.capacities.of(metric) - self.load(metric)

    def utilization(self, metric: str) -> float:
        """Load as a fraction of the logical capacity."""
        return self.load(metric) / self.capacities.of(metric)

    def violates(self, metric: str, tolerance: float = 1e-9) -> bool:
        """True when the aggregate load exceeds the logical capacity."""
        return self.load(metric) > self.capacities.of(metric) + tolerance

    def recompute_loads(self) -> None:
        """Rebuild aggregates from scratch (consistency check / repair)."""
        loads = {metric: 0.0 for metric in ALL_METRICS}
        for replica in self._replicas.values():
            for metric, value in replica.reported.items():
                loads[metric] = loads.get(metric, 0.0) + value
        self._loads = loads

    def __repr__(self) -> str:
        return (f"Node({self.node_id}, replicas={self.replica_count}, "
                f"cpu={self.load('cpu-cores'):.0f}/"
                f"{self.capacities.cpu_cores:.0f}, "
                f"disk={self.load('disk-gb'):.0f}/"
                f"{self.capacities.disk_gb:.0f})")


def total_load(nodes: Iterable[Node], metric: str) -> float:
    """Sum of one metric's aggregate load across ``nodes``."""
    return sum(node.load(metric) for node in nodes)


def total_capacity(nodes: Iterable[Node], metric: str) -> float:
    """Sum of one metric's logical capacity across ``nodes``."""
    return sum(node.capacities.of(metric) for node in nodes)
