"""Columnar (struct-of-arrays) storage for hot per-replica state.

At paper scale (~220 databases on 14 nodes) every replica carrying its
own ``{metric: value}`` dict is fine; at fleet scale (ROADMAP item 1:
millions of databases across hundreds of clusters) those dicts dominate
the heap. :class:`ReplicaLoadStore` keeps every replica's reported
loads in shared numpy columns — one float64 row per replica, one column
per core metric — and hands each replica a
:class:`ReplicaLoadView`, a ``MutableMapping`` that behaves exactly
like the dict it replaces (same keys, same iteration order, same
``get``/``items`` semantics), so no caller changes.

Byte-identity contract (tests/test_fleet_scale.py):

* Values are stored in float64 cells. Python floats *are* IEEE-754
  doubles, so a store/load round trip through a numpy cell is exact;
  every read converts back to a built-in ``float`` before the value
  can reach arithmetic, comparisons, or pickles.
* Iteration yields metrics in :data:`STORE_METRICS` order — the order
  the control plane builds a new replica's reported dict in
  (disk, memory, cpu) — so aggregate summation order, and therefore
  the accumulated node loads, match the object path bit for bit.
* The object-graph implementation stays available as an A/B fallback:
  set ``TOTO_OBJECT_STATE=1`` (or monkeypatch :data:`COLUMNAR_STATE`)
  and clusters hand replicas plain dicts again. The property tests
  drive both paths through random workloads and assert byte-equal
  results.
"""

from __future__ import annotations

import os
from collections.abc import MutableMapping
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.fabric.metrics import CPU_CORES, DISK_GB, MEMORY_GB

#: Columnar storage is the default; the object-graph fallback exists so
#: the property suite can pin the two paths against each other (and as
#: an escape hatch). Consulted at *store construction* time so tests
#: can monkeypatch it per-instance without reloading modules.
COLUMNAR_STATE = not bool(os.environ.get("TOTO_OBJECT_STATE"))


def columnar_enabled() -> bool:
    """Whether newly built clusters/control planes use columnar state."""
    return COLUMNAR_STATE


#: Column order of the store — deliberately the insertion order the
#: control plane uses when it builds a new replica's reported loads
#: (initial disk, initial memory, then the CPU reservation appended by
#: the cluster). View iteration follows this order so that
#: ``sum`` loops over ``reported.items()`` accumulate in exactly the
#: same sequence as over the object path's dicts.
STORE_METRICS: Tuple[str, ...] = (DISK_GB, MEMORY_GB, CPU_CORES)

_COLUMN_OF: Dict[str, int] = {metric: column
                              for column, metric in enumerate(STORE_METRICS)}

_MISSING = object()


class ReplicaLoadStore:
    """Shared struct-of-arrays backing for replica reported loads.

    One row per live replica; rows are recycled through a free list
    when replicas are dropped (LIFO, deterministic). Core metrics live
    in the float64 block; anything else (tests reporting exotic
    metrics) spills to a per-row dict — correctness everywhere, the
    columnar fast path for the three metrics the simulation actually
    reports.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            capacity = 1
        self._values = np.zeros((len(STORE_METRICS), capacity),
                                dtype=np.float64)
        self._present = np.zeros((len(STORE_METRICS), capacity), dtype=bool)
        #: Rare non-core metrics, row -> {metric: value}.
        self._extra: Dict[int, Dict[str, float]] = {}
        self._free: List[int] = []  # totolint: fleet-scale
        self._next_row = 0

    # -- bookkeeping ---------------------------------------------------

    @property
    def capacity(self) -> int:
        return int(self._values.shape[1])

    @property
    def rows_in_use(self) -> int:
        return self._next_row - len(self._free)

    def _grow(self) -> None:
        old = self.capacity
        grown = np.zeros((len(STORE_METRICS), old * 2), dtype=np.float64)
        grown[:, :old] = self._values
        self._values = grown
        present = np.zeros((len(STORE_METRICS), old * 2), dtype=bool)
        present[:, :old] = self._present
        self._present = present

    def allocate(self, loads: Optional[Dict[str, float]] = None
                 ) -> "ReplicaLoadView":
        """Claim a row and return its dict-like view.

        ``loads`` seeds the row (insertion order of the mapping is
        irrelevant — the view iterates in column order regardless).
        """
        if self._free:
            row = self._free.pop()
        else:
            if self._next_row >= self.capacity:
                self._grow()
            row = self._next_row
            self._next_row += 1
        self._values[:, row] = 0.0
        self._present[:, row] = False
        view = ReplicaLoadView(self, row)
        if loads:
            for metric, value in loads.items():
                view[metric] = value
        return view

    def release(self, view: "ReplicaLoadView") -> None:
        """Return a view's row to the free list.

        The view detaches with a final snapshot of its values, so any
        stale reference (a dropped replica someone kept) still reads
        the last reported loads instead of a recycled row.
        """
        if not isinstance(view, ReplicaLoadView):
            return  # object-path dict (e.g. a test-built replica)
        if view._store is not self or view._detached is not None:
            return
        view._detached = dict(view.items())
        row = view._row
        view._row = -1
        self._extra.pop(row, None)
        self._free.append(row)

    # -- scalar cell access (all reads return built-in floats) ---------

    def get_value(self, row: int, metric: str, default: object) -> object:
        column = _COLUMN_OF.get(metric)
        if column is None:
            extra = self._extra.get(row)
            if extra is None:
                return default
            return extra.get(metric, default)
        if self._present[column, row]:
            return self._values.item(column, row)
        return default

    def set_value(self, row: int, metric: str, value: float) -> None:
        column = _COLUMN_OF.get(metric)
        if column is None:
            extra = self._extra.get(row)
            if extra is None:
                extra = {}
                self._extra[row] = extra
            extra[metric] = value
            return
        self._values[column, row] = value
        self._present[column, row] = True

    def del_value(self, row: int, metric: str) -> bool:
        """Remove a metric from a row; True when it was present."""
        column = _COLUMN_OF.get(metric)
        if column is None:
            extra = self._extra.get(row)
            if extra is None or metric not in extra:
                return False
            del extra[metric]
            return True
        if not self._present[column, row]:
            return False
        self._present[column, row] = False
        self._values[column, row] = 0.0
        return True

    def update_row(self, row: int, columns: List[int],
                   values: List[float]) -> List[float]:
        """Bulk cell update: one fancy-indexed read + one write.

        Returns the previous cell values (as built-in floats) in
        ``columns`` order. Absent cells read as 0.0 — exactly what the
        scalar path's ``get(metric, 0.0)`` returned, because cells are
        zeroed on allocation and deletion — so the caller's aggregate
        arithmetic is byte-identical to a per-metric loop.
        """
        old = self._values[columns, row]
        self._values[columns, row] = values
        self._present[columns, row] = True
        return old.tolist()

    def row_items(self, row: int) -> Tuple[List[str], List[float]]:
        """Present metrics and their values, in column order."""
        metrics: List[str] = []
        values: List[float] = []
        present = self._present[:, row]
        cells = self._values[:, row]
        for column, metric in enumerate(STORE_METRICS):
            if present[column]:
                metrics.append(metric)
                values.append(cells.item(column))
        extra = self._extra.get(row)
        if extra:
            metrics.extend(extra.keys())
            values.extend(extra.values())
        return metrics, values


class ReplicaLoadView(MutableMapping):
    """Dict-compatible window onto one replica's store row.

    Supports everything the replaced ``Dict[str, float]`` supported:
    ``get``/``[]``/``in``/``items``/``len``/iteration/equality (the
    :class:`~collections.abc.Mapping` mixin compares equal to plain
    dicts with the same contents). After the owning store releases the
    row, the view keeps serving a frozen snapshot of its final values.
    """

    __slots__ = ("_store", "_row", "_detached")

    def __init__(self, store: ReplicaLoadStore, row: int) -> None:
        self._store = store
        self._row = row
        self._detached: Optional[Dict[str, float]] = None

    # -- mapping protocol ----------------------------------------------

    def __getitem__(self, metric: str) -> float:
        if self._detached is not None:
            return self._detached[metric]
        value = self._store.get_value(self._row, metric, _MISSING)
        if value is _MISSING:
            raise KeyError(metric)
        return value  # type: ignore[return-value]

    def __setitem__(self, metric: str, value: float) -> None:
        if self._detached is not None:
            self._detached[metric] = value
            return
        self._store.set_value(self._row, metric, value)

    def __delitem__(self, metric: str) -> None:
        if self._detached is not None:
            del self._detached[metric]
            return
        if not self._store.del_value(self._row, metric):
            raise KeyError(metric)

    def __iter__(self) -> Iterator[str]:
        if self._detached is not None:
            return iter(self._detached)
        metrics, _ = self._store.row_items(self._row)
        return iter(metrics)

    def __len__(self) -> int:
        if self._detached is not None:
            return len(self._detached)
        metrics, _ = self._store.row_items(self._row)
        return len(metrics)

    # -- fast paths (the MutableMapping defaults would hit the store
    # once per key *and* once per value) -------------------------------

    def get(self, metric: str, default: object = None) -> object:
        if self._detached is not None:
            return self._detached.get(metric, default)
        return self._store.get_value(self._row, metric, default)

    def items(self):  # type: ignore[override]
        if self._detached is not None:
            return list(self._detached.items())
        metrics, values = self._store.row_items(self._row)
        return list(zip(metrics, values))

    def bulk_update(self, loads: Dict[str, float]) -> Optional[List[float]]:
        """Set many metrics in one store round trip (the report sweep).

        Returns the previous values in ``loads`` iteration order (0.0
        for metrics that were absent), or ``None`` when the bulk path
        does not apply — a detached view or a non-core metric — and the
        caller must fall back to per-metric assignment.
        """
        if self._detached is not None:
            return None
        columns: List[int] = []
        for metric in loads:
            column = _COLUMN_OF.get(metric)
            if column is None:
                return None
            columns.append(column)
        return self._store.update_row(self._row, columns,
                                      list(loads.values()))

    def __contains__(self, metric: object) -> bool:
        if self._detached is not None:
            return metric in self._detached
        if not isinstance(metric, str):
            return False
        return self._store.get_value(self._row, metric,
                                     _MISSING) is not _MISSING

    def __repr__(self) -> str:
        return repr(dict(self.items()))
