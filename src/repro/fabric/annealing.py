"""Simulated annealing used by the PLB.

Paper §5.2: "the PLB in Service Fabric uses the Simulated Annealing
algorithm to decide where to place replicas. Simulated Annealing uses
randomness to prevent getting stuck in locally optimal solutions". The
paper could not pin the PLB seed across runs, which produces the
run-to-run variance quantified in §5.3.4 — our PLB takes its RNG from
a dedicated stream so experiments can either reproduce or vary it.

:func:`anneal` is a small generic minimizer over an arbitrary state via
caller-supplied ``neighbour`` and ``energy`` functions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

State = TypeVar("State")


@dataclass(frozen=True)
class AnnealResult:
    """Best state found plus search statistics."""

    state: object
    energy: float
    iterations: int
    accepted_moves: int


def anneal(initial: State,
           energy: Callable[[State], float],
           neighbour: Callable[[State, np.random.Generator], State],
           rng: np.random.Generator,
           iterations: int = 120,
           initial_temperature: float = 1.0,
           cooling: float = 0.95) -> AnnealResult:
    """Minimize ``energy`` starting from ``initial``.

    Uses the Metropolis acceptance rule with geometric cooling. The
    best state ever visited is returned (not the final state), so a
    late uphill wander cannot lose an earlier optimum.
    """
    current = initial
    current_energy = energy(current)
    best = current
    best_energy = current_energy
    temperature = initial_temperature
    accepted = 0
    for _ in range(iterations):
        candidate = neighbour(current, rng)
        candidate_energy = energy(candidate)
        delta = candidate_energy - current_energy
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
            current = candidate
            current_energy = candidate_energy
            accepted += 1
            if current_energy < best_energy:
                best = current
                best_energy = current_energy
        temperature *= cooling
    return AnnealResult(state=best, energy=best_energy,
                        iterations=iterations, accepted_moves=accepted)
