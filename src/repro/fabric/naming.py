"""The Naming Service: Service Fabric's highly available metastore.

Paper §3.3.1: "Naming Service is a highly available metastore database
in Service Fabric." Toto uses it twice:

* the model XML blob is written under a well-known key and re-read by
  every RgManager every 15 minutes;
* *persisted* metric loads (local-store disk) are durably stored so a
  newly promoted primary resumes from the previous primary's value
  after a failover (§3.3.2).

The store is versioned per key so tests can assert that a model update
was actually propagated, and it keeps simple read/write counters which
the ablation benchmarks use to show the cost of persisted metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List

from repro.errors import NamingServiceError


@dataclass
class _Entry:
    value: Any
    version: int


class NamingService:
    """A versioned in-memory key/value metastore.

    Version counters survive deletion: a key deleted and re-created
    continues its version sequence. This matters for the model-XML
    refresh protocol — RgManagers compare version numbers to detect
    changes, so a delete + re-publish must never reuse an old version.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, _Entry] = {}
        self._version_counters: Dict[str, int] = {}
        self.reads = 0
        self.writes = 0

    def put(self, key: str, value: Any) -> int:
        """Store ``value`` under ``key``; returns the new version."""
        self.writes += 1
        version = self._version_counters.get(key, 0) + 1
        self._version_counters[key] = version
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = _Entry(value=value, version=version)
        else:
            entry.value = value
            entry.version = version
        return version

    def get(self, key: str) -> Any:
        """Return the value for ``key``; raises if absent."""
        self.reads += 1
        entry = self._entries.get(key)
        if entry is None:
            raise NamingServiceError(f"key '{key}' not found")
        return entry.value

    def get_or_default(self, key: str, default: Any = None) -> Any:
        """Return the value for ``key`` or ``default`` when absent."""
        self.reads += 1
        entry = self._entries.get(key)
        return default if entry is None else entry.value

    def version(self, key: str) -> int:
        """Version counter for ``key`` (0 when absent)."""
        entry = self._entries.get(key)
        return 0 if entry is None else entry.version

    def exists(self, key: str) -> bool:
        return key in self._entries

    def delete(self, key: str) -> None:
        """Remove ``key``; raises if absent."""
        if key not in self._entries:
            raise NamingServiceError(f"key '{key}' not found")
        del self._entries[key]

    def delete_if_exists(self, key: str) -> bool:
        """Remove ``key`` if present; returns whether it existed."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def keys(self, prefix: str = "") -> List[str]:
        """All keys starting with ``prefix``, sorted."""
        return sorted(k for k in self._entries if k.startswith(prefix))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))
