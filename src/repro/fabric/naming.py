"""The Naming Service: Service Fabric's highly available metastore.

Paper §3.3.1: "Naming Service is a highly available metastore database
in Service Fabric." Toto uses it twice:

* the model XML blob is written under a well-known key and re-read by
  every RgManager every 15 minutes;
* *persisted* metric loads (local-store disk) are durably stored so a
  newly promoted primary resumes from the previous primary's value
  after a failover (§3.3.2).

The store is versioned per key so tests can assert that a model update
was actually propagated, and it keeps simple read/write counters which
the ablation benchmarks use to show the cost of persisted metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import NamingServiceError


@dataclass
class _Entry:
    value: Any
    version: int


class NamingFaultGate:
    """Hook points the fault-injection subsystem implements.

    The Naming Service consults its (optional) gate before serving
    each request: ``on_read``/``on_write`` may raise
    :class:`repro.errors.NamingUnavailableError` to model an outage
    that outlasted the caller's retry budget, and ``stale_view`` may
    return a snapshot of the store taken at an earlier instant so
    reads inside a stale-read window see old data. The default
    implementation disturbs nothing.
    """

    def on_read(self, key: str) -> None:
        """Called before a read is served; may raise."""

    def on_write(self, key: str) -> None:
        """Called before a write is applied; may raise."""

    def stale_view(self) -> Optional[Dict[str, _Entry]]:
        """Entries to serve reads from instead of the live store."""
        return None


class NamingService:
    """A versioned in-memory key/value metastore.

    Version counters survive deletion: a key deleted and re-created
    continues its version sequence. This matters for the model-XML
    refresh protocol — RgManagers compare version numbers to detect
    changes, so a delete + re-publish must never reuse an old version.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, _Entry] = {}
        self._version_counters: Dict[str, int] = {}
        self.reads = 0
        self.writes = 0
        #: Optional fault-injection gate (see :class:`NamingFaultGate`).
        self.fault_gate: Optional[NamingFaultGate] = None

    def _read_entries(self, key: str) -> Dict[str, _Entry]:
        """The entry map to serve a read from, after gating."""
        if self.fault_gate is not None:
            self.fault_gate.on_read(key)
            stale = self.fault_gate.stale_view()
            if stale is not None:
                return stale
        return self._entries

    def snapshot(self) -> Dict[str, _Entry]:
        """Point-in-time copy of the store (for stale-read windows)."""
        return {key: _Entry(value=entry.value, version=entry.version)
                for key, entry in self._entries.items()}

    def put(self, key: str, value: Any) -> int:
        """Store ``value`` under ``key``; returns the new version."""
        if self.fault_gate is not None:
            self.fault_gate.on_write(key)
        self.writes += 1
        version = self._version_counters.get(key, 0) + 1
        self._version_counters[key] = version
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = _Entry(value=value, version=version)
        else:
            entry.value = value
            entry.version = version
        return version

    def get(self, key: str) -> Any:
        """Return the value for ``key``; raises if absent."""
        self.reads += 1
        entry = self._read_entries(key).get(key)
        if entry is None:
            raise NamingServiceError(f"key '{key}' not found")
        return entry.value

    def get_or_default(self, key: str, default: Any = None) -> Any:
        """Return the value for ``key`` or ``default`` when absent."""
        self.reads += 1
        entry = self._read_entries(key).get(key)
        return default if entry is None else entry.value

    def version(self, key: str) -> int:
        """Version counter for ``key`` (0 when absent).

        Gated like a read: during a stale window the version comes from
        the snapshot, so a refresher comparing versions and then
        fetching the blob sees one consistent (old) view.
        """
        entry = self._read_entries(key).get(key)
        return 0 if entry is None else entry.version

    def exists(self, key: str) -> bool:
        return key in self._entries

    def delete(self, key: str) -> None:
        """Remove ``key``; raises if absent."""
        if key not in self._entries:
            raise NamingServiceError(f"key '{key}' not found")
        del self._entries[key]

    def delete_if_exists(self, key: str) -> bool:
        """Remove ``key`` if present; returns whether it existed."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def keys(self, prefix: str = "") -> List[str]:
        """All keys starting with ``prefix``, sorted."""
        return sorted(k for k in self._entries if k.startswith(prefix))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))
