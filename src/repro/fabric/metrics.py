"""Load-metric names and node-level logical capacities.

Paper §3.1: "A metric can be arbitrary and model anything, but usually
they model system resources such as CPU, memory, and disk. [...] Each
resource metric has a predefined node-level logical capacity, which
specifies the load threshold at which PLB will initiate a failover."

CPU is a *reservation* metric in SQL DB — the SLO's core count is
reserved at placement time and never changes — while disk and memory
are *dynamic* metrics re-reported by each replica. The density knob the
paper tunes (§5) multiplies only the CPU logical capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FabricError

#: Reserved logical cores (static per replica, set by the SLO).
CPU_CORES = "cpu-cores"
#: Local disk consumption in GB (dynamic, the paper's key resource).
DISK_GB = "disk-gb"
#: DRAM consumption in GB (dynamic; modeled as future work in §5.5).
MEMORY_GB = "memory-gb"
#: Advisory modeled CPU *usage* in cores (distinct from the enforced
#: reservation metric); consumed by RgManager's noisy-neighbor
#: governance, never reported to the PLB.
CPU_USED_CORES = "cpu-used-cores"

ALL_METRICS = (CPU_CORES, DISK_GB, MEMORY_GB)

#: Metrics that participate in capacity-violation checks by default.
#: Memory stays advisory (the paper's experiments only govern CPU
#: reservations and disk).
ENFORCED_METRICS = (CPU_CORES, DISK_GB)


@dataclass(frozen=True)
class NodeCapacities:
    """Logical capacities of one node.

    ``cpu_cores`` is the density-scaled reservation budget; nodes refuse
    placements past it and the control plane redirects creations once
    the cluster-wide budget is exhausted. ``disk_gb`` is the threshold
    past which the PLB fails replicas over.
    """

    cpu_cores: float
    disk_gb: float
    memory_gb: float

    def __post_init__(self) -> None:
        for name, value in (("cpu_cores", self.cpu_cores),
                            ("disk_gb", self.disk_gb),
                            ("memory_gb", self.memory_gb)):
            if value <= 0:
                raise FabricError(f"capacity {name} must be positive, "
                                  f"got {value}")

    def of(self, metric: str) -> float:
        """Capacity for a metric name."""
        if metric == CPU_CORES:
            return self.cpu_cores
        if metric == DISK_GB:
            return self.disk_gb
        if metric == MEMORY_GB:
            return self.memory_gb
        raise FabricError(f"unknown metric '{metric}'")

    def scaled_cpu(self, density: float) -> "NodeCapacities":
        """Return a copy with the CPU budget multiplied by ``density``.

        This is the paper's density knob: "increased density (e.g. 110%)
        refers to reserving more cores for databases than the predefined
        logical capacity of the node" (§5).
        """
        if density <= 0:
            raise FabricError(f"density must be positive, got {density}")
        return NodeCapacities(cpu_cores=self.cpu_cores * density,
                              disk_gb=self.disk_gb,
                              memory_gb=self.memory_gb)


#: A gen5-style data-plane node (see DESIGN.md §6). 72 logical cores,
#: 4 TB local SSD, 384 GB DRAM at 100% density.
GEN5_NODE = NodeCapacities(cpu_cores=72.0, disk_gb=4096.0, memory_gb=384.0)
