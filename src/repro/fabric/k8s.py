"""A Kubernetes-style orchestrator backend.

Second :class:`~repro.fabric.backend.OrchestratorBackend`: the same
cluster, databases, and load models, scheduled the way a Kubernetes
control plane would (Turin et al., "Predicting Resource Consumption of
Kubernetes Container Systems", PAPERS.md):

* every replica declares a :class:`ResourceSpec` — *requests* taken
  straight from the existing models (the SLO's CPU reservation, the
  database's initial disk, the cold buffer-pool memory) and *limits*
  at node allocatable capacity;
* placement is a feasibility filter (``PodFitsResources``) followed by
  deterministic least-requested scoring — no annealing, no RNG;
* make-room is *preemption*: standard-priority replicas (General
  Purpose) are evicted before premium ones (multi-replica Business
  Critical), highest request pressure first so the fewest evictions
  clear the shortfall;
* capacity-violation relief spreads the evicted replicas across
  receiving nodes with an EPLB-style proportional allocation plus LPT
  assignment (SNIPPETS.md #2): targets earn quotas in proportion to
  their free capacity, then victims land largest-first on the most
  capable remaining target.

Determinism: every scheduling decision is a pure function of cluster
state. The only stochastic draw on any code path is the shared
failover-downtime model, which the base class's move mechanics take
from the named ``("failover", "downtime")`` substream — so DetSan and
the substream registry see nothing new.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NamingUnavailableError, PlacementError
from repro.fabric.backend import OrchestratorBackend, register_backend
from repro.fabric.failover import REASON_MAKE_ROOM, FailoverRecord
from repro.fabric.metrics import CPU_CORES, DISK_GB, MEMORY_GB, NodeCapacities
from repro.fabric.node import Node
from repro.fabric.plb import (
    MAX_MAKE_ROOM_MOVES,
    MAX_MOVES_PER_SWEEP,
    PlbStats,
)
from repro.fabric.replica import Replica

if TYPE_CHECKING:  # pragma: no cover
    from repro.fabric.plb import ClusterView

#: Resources the scheduler scores and bin-packs against. CPU and disk
#: are the enforced metrics; memory participates the way kube-scheduler
#: treats it — a request that must fit allocatable capacity.
SCHEDULED_METRICS: Tuple[str, ...] = (CPU_CORES, DISK_GB, MEMORY_GB)

#: Naming-service key prefix for the backend's endpoint records.
ENDPOINTS_PREFIX = "endpoints/"


@dataclass(frozen=True)
class ResourceSpec:
    """One replica's declared requests and limits.

    Requests are derived from the existing disk/memory/CPU models —
    nothing is re-estimated for this backend — and limits sit at node
    allocatable capacity: SQL replicas are burstable up to the node,
    with the CPU governor (:mod:`repro.sqldb.governance`) playing the
    role of the cgroup throttle.
    """

    requests: Dict[str, float]
    limits: Dict[str, float]


def resource_spec(loads: Dict[str, float],
                  capacities: NodeCapacities) -> ResourceSpec:
    """Build the declared spec for a replica with ``loads``."""
    return ResourceSpec(
        requests={metric: loads.get(metric, 0.0)
                  for metric in SCHEDULED_METRICS},
        limits={metric: capacities.of(metric)
                for metric in SCHEDULED_METRICS},
    )


class KubernetesBackend(OrchestratorBackend):
    """Requests/limits bin-packing with priority preemption.

    Args:
        nodes: the cluster's nodes (shared, live objects).
        rng: the backend's decision stream. Accepted for registry
            uniformity but never drawn from — kube-scheduler scoring
            is deterministic.
        use_annealing: the annealing PLB's knob; accepted and ignored.
        downtime_rng: the shared failover-downtime substream, consumed
            by the base class's move mechanics.
    """

    name = "k8s"

    def __init__(self, nodes: Sequence[Node], rng: np.random.Generator,
                 use_annealing: bool = True,
                 downtime_rng: np.random.Generator = None) -> None:
        self._nodes = list(nodes)
        self._rng = rng
        self._downtime_rng = downtime_rng if downtime_rng is not None else rng
        self.stats = PlbStats()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _score(self, node: Node, requests: Dict[str, float]) -> float:
        """Least-requested score after hypothetically adding ``requests``.

        Mean free fraction across the scheduled resources, as
        kube-scheduler's ``LeastRequestedPriority`` computes it (up to
        its ×10 scaling); higher is better, so placements spread.
        """
        total = 0.0
        for metric in SCHEDULED_METRICS:
            free = node.free(metric) - requests.get(metric, 0.0)
            total += free / node.capacities.of(metric)
        return total / len(SCHEDULED_METRICS)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def find_placement(self, service_id: str, replica_count: int,
                       loads: Dict[str, float]) -> List[int]:
        """Filter + score, as the scheduler framework phases them."""
        spec = resource_spec(loads, self._nodes[0].capacities)
        feasible = self._feasible_nodes(service_id, spec.requests)
        if len(feasible) < replica_count:
            self.stats.placement_failures += 1
            raise PlacementError(
                f"service {service_id} needs {replica_count} nodes, "
                f"only {len(feasible)} feasible")
        scored = sorted(
            feasible,
            key=lambda node: (-self._score(node, spec.requests),
                              node.node_id))
        self.stats.placements += 1
        return [node.node_id for node in scored[:replica_count]]

    def choose_target(self, replica: Replica,
                      source: Node) -> Optional[Node]:
        """Highest-scoring feasible node for a displaced replica."""
        best: Optional[Node] = None
        best_score = 0.0
        for node in self._nodes:
            if node.node_id == source.node_id:
                continue
            if node.hosts_service(replica.service_id):
                continue
            if not self._fits(node, replica.reported):
                continue
            score = self._score(node, replica.reported)
            if best is None or score > best_score or (
                    score == best_score and node.node_id < best.node_id):
                best = node
                best_score = score
        return best

    # ------------------------------------------------------------------
    # Preemption (make-room)
    # ------------------------------------------------------------------

    def make_room(self, now: int, service_id: str, replica_count: int,
                  loads: Dict[str, float],
                  cluster: "ClusterView") -> List[FailoverRecord]:
        """Evict lower-priority replicas until the placement fits.

        Kubernetes preemption semantics: a pending pod may displace
        pods of lower priority; the victims are rescheduled elsewhere
        (here: moved, since the simulation has no pending queue for
        evictees).
        """
        records: List[FailoverRecord] = []
        for _ in range(MAX_MAKE_ROOM_MOVES):
            feasible = self._feasible_nodes(service_id, loads)
            if len(feasible) >= replica_count:
                break
            move = self._preempt_once(now, service_id, loads, cluster)
            if move is None:
                break
            records.append(move)
        return records

    def _preempt_once(self, now: int, service_id: str,
                      loads: Dict[str, float], cluster: "ClusterView"
                      ) -> Optional[FailoverRecord]:
        """Evict one replica from the node nearest feasibility."""
        needed_cpu = loads.get(CPU_CORES, 0.0)
        needed_disk = loads.get(DISK_GB, 0.0)
        needed_memory = loads.get(MEMORY_GB, 0.0)
        candidates: List[Tuple[float, Node]] = []
        for node in self._nodes:
            if node.hosts_service(service_id):
                continue
            if self._fits(node, loads):
                continue
            free = node.free
            # Preemption frees requests, and only the CPU reservation
            # is a movable request; skip nodes blocked on disk/memory.
            if needed_disk > 0 and free(DISK_GB) < needed_disk:
                continue
            if needed_memory > 0 and free(MEMORY_GB) < needed_memory:
                continue
            shortfall = needed_cpu - free(CPU_CORES)
            if shortfall > 0:
                candidates.append((shortfall, node))  # totolint: disable=TL020
        candidates.sort(key=lambda pair: (pair[0], pair[1].node_id))
        for _, node in candidates:
            victims = sorted(
                (r for r in node.replicas if r.cpu_cores > 0),  # totolint: disable=TL020
                key=lambda r: self._eviction_order(r, cluster))  # totolint: disable=TL020
            for victim in victims:
                target = self.choose_target(victim, node)
                if target is None:
                    continue
                record = self._move(now, victim, node, target, CPU_CORES,
                                    cluster, reason=REASON_MAKE_ROOM)
                self.stats.make_room_moves += 1
                return record
        return None

    def _eviction_order(self, replica: Replica,
                        cluster: "ClusterView") -> Tuple[bool, float, int]:
        """Victim ranking: priority class, then request pressure.

        Multi-replica (Business Critical) services run at premium
        priority and are preempted last; within a class the highest
        CPU request goes first so the fewest evictions clear a
        shortfall.
        """
        premium = cluster.replica_count_of(replica.service_id) > 1
        return (premium, -replica.cpu_cores, replica.replica_id)

    # ------------------------------------------------------------------
    # Capacity violations (node-pressure eviction)
    # ------------------------------------------------------------------

    def fix_violations(self, now: int, cluster: "ClusterView",
                       metric: str = DISK_GB) -> List[FailoverRecord]:
        """Node-pressure eviction with EPLB-style victim spreading."""
        records: List[FailoverRecord] = []
        moves_left = MAX_MOVES_PER_SWEEP
        for node in self._nodes:
            if moves_left <= 0:
                break
            if not node.available or not node.violates(metric):
                continue
            victims = self._select_victims(node, metric, cluster)
            moved = self._spread_victims(now, node, victims[:moves_left],
                                         metric, cluster)
            records.extend(moved)
            moves_left -= len(moved)
            if node.violates(metric) and not moved:
                self.stats.stuck_violations += 1
        return records

    def _select_victims(self, node: Node, metric: str,
                        cluster: "ClusterView") -> List[Replica]:
        """Smallest victim set that clears the node's excess.

        Ranked like kubelet node-pressure eviction: standard priority
        before premium, then the largest consumer of the pressured
        resource first.
        """
        excess = node.load(metric) - node.capacities.of(metric)
        movable = sorted(
            (r for r in node.replicas if r.load(metric) > 0.0),
            key=lambda r: (cluster.replica_count_of(r.service_id) > 1,
                           -r.load(metric), r.replica_id))
        victims: List[Replica] = []
        for replica in movable:
            if excess <= 0:
                break
            victims.append(replica)
            excess -= replica.load(metric)
        return victims

    def _spread_victims(self, now: int, source: Node,
                        victims: List[Replica], metric: str,
                        cluster: "ClusterView") -> List[FailoverRecord]:
        """EPLB-style proportional quotas + LPT assignment.

        Phase 1 hands each candidate target a victim quota proportional
        to its free capacity on the pressured resource — the snippet's
        heap refinement, computed as repeated deterministic argmax of
        ``weight / (quota + 1)``. Phase 2 assigns victims largest-first
        (LPT) to the feasible quota-holding target with the most
        remaining free capacity; a victim whose quota targets cannot
        take it falls back to plain target selection.
        """
        targets = [n for n in self._nodes
                   if n.available and n.node_id != source.node_id]
        if not targets or not victims:
            return []
        weights = [max(n.free(metric), 0.0) for n in targets]
        quotas = [0] * len(targets)
        if sum(weights) > 0.0:
            for _ in victims:
                best = 0
                best_share = -1.0
                for index, weight in enumerate(weights):
                    share = weight / (quotas[index] + 1)
                    if share > best_share:
                        best = index
                        best_share = share
                quotas[best] += 1
        ordered = sorted(victims,
                         key=lambda r: (-r.load(metric), r.replica_id))
        records: List[FailoverRecord] = []
        for victim in ordered:
            chosen: Optional[int] = None
            chosen_free = -1.0
            for index, target in enumerate(targets):
                if quotas[index] <= 0:
                    continue
                if target.hosts_service(victim.service_id):
                    continue
                if not self._fits(target, victim.reported):
                    continue
                free = target.free(metric)
                if free > chosen_free:
                    chosen = index
                    chosen_free = free
            if chosen is not None:
                quotas[chosen] -= 1
                target = targets[chosen]
            else:
                fallback = self.choose_target(victim, source)
                if fallback is None:
                    continue
                target = fallback
            records.append(self._move(now, victim, source, target,
                                      metric, cluster))
        return records

    # ------------------------------------------------------------------
    # Naming registration (k8s Endpoints analogue)
    # ------------------------------------------------------------------

    def register_service(self, naming, service_id: str,
                         node_ids: Sequence[int]) -> None:
        """Publish the placed replica set as an endpoints record.

        Best-effort: chaos can gate metastore writes, and a lost
        endpoint write must not fail the placement — a real control
        loop would reconcile it asynchronously.
        """
        try:
            naming.put(ENDPOINTS_PREFIX + service_id,
                       tuple(int(node_id) for node_id in node_ids))
        except NamingUnavailableError:
            pass

    def unregister_service(self, naming, service_id: str) -> None:
        """Drop the endpoints record (local cleanup, never gated)."""
        naming.delete_if_exists(ENDPOINTS_PREFIX + service_id)


register_backend("k8s", KubernetesBackend)
