"""Service replicas and their reported loads.

Every SQL database is a Service Fabric *service*; local-store
(Premium/BC) databases run four replicas on four distinct nodes, while
remote-store (Standard/GP) databases run a single replica (§2). Each
replica owns the loads it last reported to the PLB.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.fabric.metrics import CPU_CORES


class ReplicaRole(enum.Enum):
    """Replica role within a service's replica set."""

    PRIMARY = "primary"
    SECONDARY = "secondary"


@dataclass
class Replica:
    """One replica of a service placed on a node.

    Attributes:
        replica_id: unique id within the cluster.
        service_id: owning service (the database id).
        role: primary or secondary.
        node_id: hosting node, ``None`` while unplaced.
        reported: last loads reported to the PLB, metric name -> value.
            CPU is seeded with the SLO reservation at creation and never
            changes; disk/memory change with every report.
    """

    replica_id: int
    service_id: str
    role: ReplicaRole
    node_id: Optional[int] = None
    reported: Dict[str, float] = field(default_factory=dict)

    @property
    def is_primary(self) -> bool:
        return self.role is ReplicaRole.PRIMARY

    @property
    def cpu_cores(self) -> float:
        """The CPU reservation this replica holds."""
        return self.reported.get(CPU_CORES, 0.0)

    def load(self, metric: str) -> float:
        """Last reported load for ``metric`` (0 when never reported)."""
        return self.reported.get(metric, 0.0)

    def __repr__(self) -> str:
        return (f"Replica({self.replica_id}, svc={self.service_id}, "
                f"{self.role.value}, node={self.node_id})")
