"""The Service-Fabric cluster facade.

Ties nodes, the Naming Service, and the PLB into the single object the
SQL DB substrate talks to. Exposes the orchestrator API surface Toto
exercises: create/drop service, report load, and the periodic
violation sweep that produces failovers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional

import numpy as np

from repro.errors import FabricError, PlacementError, UnknownReplicaError
from repro.fabric import colstore
from repro.fabric.backend import create_backend
from repro.fabric.failover import (
    REASON_NODE_FAILURE,
    FailoverRecord,
    failover_downtime,
    rebuild_seconds,
)
from repro.fabric.metrics import (
    CPU_CORES,
    DISK_GB,
    MEMORY_GB,
    NodeCapacities,
)
from repro.fabric.naming import NamingService
from repro.fabric.node import Node, total_capacity, total_load
from repro.fabric.plb import ClusterView
from repro.fabric.replica import Replica, ReplicaRole

FailoverListener = Callable[[FailoverRecord], None]


class PendingReplica(NamedTuple):
    """A replica displaced by a node failure, waiting for capacity."""

    replica: Replica
    source: Node
    since: int
    downtime: float
    role: ReplicaRole


@dataclass
class ServiceRecord:
    """Bookkeeping for one deployed service (one database)."""

    service_id: str
    replica_count: int
    cpu_cores: float
    created_at: int
    replicas: List[Replica] = field(default_factory=list)

    @property
    def primary(self) -> Replica:
        for replica in self.replicas:
            if replica.is_primary:
                return replica
        raise FabricError(f"service {self.service_id} has no primary")

    @property
    def secondaries(self) -> List[Replica]:
        return [r for r in self.replicas if not r.is_primary]


class ServiceFabricCluster(ClusterView):
    """A cluster of nodes under one PLB, with a Naming Service.

    Args:
        node_count: number of data-plane nodes.
        capacities: per-node logical capacities (already density-scaled
            via :meth:`NodeCapacities.scaled_cpu` by the caller).
        plb_rng: random stream for the PLB's annealing.
        use_annealing: False switches the PLB to greedy placement.
        downtime_rng: dedicated stream for failover-downtime draws.
            Defaults to ``plb_rng`` for backward compatibility; callers
            that care about stream isolation (the tenant ring) pass the
            named ``("failover", "downtime")`` substream so downtime
            sampling never perturbs placement decisions.
        backend: registered orchestrator-backend name
            (:func:`repro.fabric.backend.backend_names`). The default
            ``"annealing"`` PLB reproduces the paper's control plane;
            the attribute keeps its historical name ``plb`` whichever
            backend is selected.
    """

    def __init__(self, node_count: int, capacities: NodeCapacities,
                 plb_rng: np.random.Generator,
                 use_annealing: bool = True,
                 downtime_rng: np.random.Generator = None,
                 backend: str = "annealing") -> None:
        if node_count <= 0:
            raise FabricError(f"node_count must be positive, got {node_count}")
        self.nodes: List[Node] = [Node(node_id, capacities)
                                  for node_id in range(node_count)]
        self.naming = NamingService()
        self._downtime_rng = downtime_rng if downtime_rng is not None \
            else plb_rng
        self.plb = create_backend(backend, self.nodes, plb_rng,
                                  use_annealing=use_annealing,
                                  downtime_rng=downtime_rng)
        self._services: Dict[str, ServiceRecord] = {}
        #: Columnar replica-load backing (fleet-scale path); ``None``
        #: selects the classic per-replica dict state.
        self._load_store: Optional[colstore.ReplicaLoadStore] = (
            colstore.ReplicaLoadStore() if colstore.columnar_enabled()
            else None)
        #: Per-metric totals are static after construction (the node
        #: list and every node's capacities never change), but they are
        #: consulted in every telemetry frame and KPI assembly — so
        #: compute each metric once, lazily.
        self._capacity_cache: Dict[str, float] = {}
        self._replica_ids = itertools.count(1)
        self._replicas_by_id: Dict[int, Replica] = {}
        self.failovers: List[FailoverRecord] = []  # totolint: fleet-scale
        self._failover_listeners: List[FailoverListener] = []
        #: In-flight replica rebuilds: service id -> finish timestamp.
        self._rebuilding_until: Dict[str, int] = {}
        #: Replicas displaced by a node failure still waiting for
        #: capacity (with the downtime booked at failure time).
        self._pending: List[PendingReplica] = []

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def service_count(self) -> int:
        return len(self._services)

    def services(self) -> Iterator[ServiceRecord]:
        return iter(list(self._services.values()))

    def service(self, service_id: str) -> ServiceRecord:
        record = self._services.get(service_id)
        if record is None:
            raise FabricError(f"unknown service '{service_id}'")
        return record

    def has_service(self, service_id: str) -> bool:
        return service_id in self._services

    def replicas(self) -> Iterator[Replica]:
        """All replicas across all services (stable id order)."""
        return iter([self._replicas_by_id[rid]
                     for rid in sorted(self._replicas_by_id)])

    def replica(self, replica_id: int) -> Replica:
        replica = self._replicas_by_id.get(replica_id)
        if replica is None:
            raise UnknownReplicaError(f"unknown replica {replica_id}")
        return replica

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    # -- aggregate capacity views --------------------------------------

    def total_capacity(self, metric: str) -> float:
        cached = self._capacity_cache.get(metric)
        if cached is None:
            cached = total_capacity(self.nodes, metric)
            self._capacity_cache[metric] = cached
        return cached

    def total_load(self, metric: str) -> float:
        return total_load(self.nodes, metric)

    def free_capacity(self, metric: str) -> float:
        return self.total_capacity(metric) - self.total_load(metric)

    def reserved_cores(self) -> float:
        """Cluster-wide reserved CPU cores (the paper's headline KPI)."""
        return self.total_load(CPU_CORES)

    def disk_usage_gb(self) -> float:
        """Cluster-wide reported disk usage."""
        return self.total_load(DISK_GB)

    def can_fit_service(self, replica_count: int,
                        loads: Dict[str, float]) -> bool:
        """Feasibility probe used by admission control (no side effects)."""
        feasible = sum(1 for node in self.nodes
                       if all(node.free(metric) >= needed
                              for metric, needed in loads.items()
                              if needed > 0))
        return feasible >= replica_count

    # ------------------------------------------------------------------
    # Service lifecycle
    # ------------------------------------------------------------------

    def create_service(self, service_id: str, replica_count: int,
                       cpu_cores: float, initial_loads: Dict[str, float],
                       now: int) -> ServiceRecord:
        """Place a new service's replicas across distinct nodes.

        ``initial_loads`` are per-replica dynamic loads (disk/memory);
        the CPU reservation is added automatically. Raises
        :class:`PlacementError` when the cluster cannot host it — the
        control plane surfaces that as a creation redirect.
        """
        if service_id in self._services:
            raise FabricError(f"service '{service_id}' already exists")
        if replica_count < 1:
            raise FabricError(f"replica_count must be >= 1, got {replica_count}")
        loads = dict(initial_loads)
        loads[CPU_CORES] = cpu_cores
        # Replica-set sizing is the backend's call; both shipped
        # backends honour the SLO's count (the admission and revenue
        # models charged for exactly that many replicas).
        replica_count = self.plb.replica_count_for(replica_count, loads)
        try:
            node_ids = self.plb.find_placement(service_id, replica_count,
                                               loads)
        except PlacementError:
            # SF-style balancing: relocate existing replicas to make
            # room, then retry the placement once.
            moves = self.plb.make_room(now, service_id, replica_count,
                                       loads, self)
            self._record_moves(moves)
            node_ids = self.plb.find_placement(service_id, replica_count,
                                               loads)

        record = ServiceRecord(service_id=service_id,
                               replica_count=replica_count,
                               cpu_cores=cpu_cores, created_at=now)
        store = self._load_store
        for index, node_id in enumerate(node_ids):
            role = ReplicaRole.PRIMARY if index == 0 else ReplicaRole.SECONDARY
            reported = store.allocate(loads) if store is not None \
                else dict(loads)
            replica = Replica(replica_id=next(self._replica_ids),
                              service_id=service_id, role=role,
                              reported=reported)
            self.nodes[node_id].attach(replica)
            record.replicas.append(replica)
            self._replicas_by_id[replica.replica_id] = replica
        self._services[service_id] = record
        # Naming-registration hook: a no-op for the annealing backend
        # (the seed's metastore traffic is pinned byte for byte), an
        # endpoints write for the Kubernetes-style one.
        self.plb.register_service(self.naming, service_id, node_ids)
        return record

    def drop_service(self, service_id: str) -> ServiceRecord:
        """Remove all replicas of a service and free their capacity."""
        record = self.service(service_id)
        store = self._load_store
        for replica in record.replicas:
            if replica.node_id is not None:
                self.nodes[replica.node_id].detach(replica)
            del self._replicas_by_id[replica.replica_id]
            if store is not None:
                store.release(replica.reported)
        del self._services[service_id]
        self._rebuilding_until.pop(service_id, None)
        self.plb.unregister_service(self.naming, service_id)
        return record

    # ------------------------------------------------------------------
    # Load reporting and balancing
    # ------------------------------------------------------------------

    def report_load(self, replica: Replica, loads: Dict[str, float]) -> None:
        """A replica reports its (possibly Toto-fabricated) loads."""
        if replica.node_id is None:
            raise UnknownReplicaError(
                f"replica {replica.replica_id} is not placed")
        self.nodes[replica.node_id].apply_report(replica, loads)

    def sweep_violations(self, now: int) -> List[FailoverRecord]:
        """Fix disk-capacity violations; returns this sweep's failovers."""
        self._retry_pending(now)
        records = self.plb.fix_violations(now, self, metric=DISK_GB)
        self._record_moves(records)
        return records

    def bootstrap_spill(self, service_id: str, replica_count: int,
                        cpu_cores: float, initial_loads: Dict[str, float],
                        now: int) -> List[FailoverRecord]:
        """Swap replicas between nodes to unwedge a bootstrap placement.

        Called by the control plane only on the bootstrap path, after
        ``create_service`` (including its make-room retry) has failed:
        the backend swaps a disk-heavy replica off a CPU-rich node
        against a disk-light one from a disk-rich node until the new
        service fits (:meth:`OrchestratorBackend.bootstrap_spill`).
        Returns the planned moves performed; the caller retries the
        create.
        """
        loads = dict(initial_loads)
        loads[CPU_CORES] = cpu_cores
        records = self.plb.bootstrap_spill(now, service_id, replica_count,
                                           loads, self)
        self._record_moves(records)
        return records

    # ------------------------------------------------------------------
    # Node failures (§5.2's "intermittent failures")
    # ------------------------------------------------------------------

    def fail_node(self, node_id: int, now: int) -> List[FailoverRecord]:
        """Take a node down; its replicas are rebuilt elsewhere.

        Replicas that fit on surviving nodes move immediately; the rest
        go *pending* and are retried every sweep. A pending replica of
        a single-replica service is a customer outage until placed.
        """
        node = self.nodes[node_id]
        if not node.available:
            raise FabricError(f"node {node_id} is already down")
        node.available = False
        records: List[FailoverRecord] = []
        for replica in list(node.replicas):
            service_id = replica.service_id
            record = self.service(service_id)
            role_at_failure = replica.role
            # Downtime semantics match a reactive failover: single
            # replica = reattach window, lost primary = promotion.
            downtime = failover_downtime(replica, record.replica_count,
                                         self._downtime_rng)
            node.detach(replica)
            if (role_at_failure is ReplicaRole.PRIMARY
                    and record.replica_count > 1):
                self.promote_new_primary(service_id,
                                         exclude_replica=replica.replica_id)
                replica.role = ReplicaRole.SECONDARY
            target = self.plb.choose_target(replica, node)
            if target is None:
                self._pending.append(PendingReplica(
                    replica, node, now, downtime, role_at_failure))
                continue
            target.attach(replica)
            rebuild = rebuild_seconds(replica.load(DISK_GB),
                                      record.replica_count)
            if record.replica_count > 1 and rebuild > 0:
                self.set_rebuilding(service_id,
                                    int(now + rebuild))
            records.append(FailoverRecord(
                time=now, service_id=service_id,
                replica_id=replica.replica_id, role=role_at_failure,
                from_node=node_id, to_node=target.node_id,
                metric=CPU_CORES, cores_moved=replica.cpu_cores,
                disk_moved_gb=replica.load(DISK_GB),
                downtime_seconds=downtime, rebuild_seconds=rebuild,
                reason=REASON_NODE_FAILURE))
        self._record_moves(records)
        return records

    def restore_node(self, node_id: int) -> None:
        """Bring a failed node back (empty; the PLB refills it)."""
        self.nodes[node_id].available = True

    @property
    def pending_replicas(self) -> int:
        """Displaced replicas still waiting for capacity."""
        return len(self._pending)

    def _retry_pending(self, now: int) -> None:
        """Try to place replicas displaced by node failures.

        Single-replica services accrue the full waiting time as
        downtime — the database simply is not running anywhere.
        """
        if not self._pending:
            return
        still_pending: List[PendingReplica] = []
        records: List[FailoverRecord] = []
        for pending in self._pending:
            replica, source, since, downtime, role = pending
            service_id = replica.service_id
            if not self.has_service(service_id):
                continue  # dropped while pending
            target = self.plb.choose_target(replica, source)
            if target is None:
                still_pending.append(pending)
                continue
            target.attach(replica)
            record = self.service(service_id)
            total_downtime = downtime
            if record.replica_count == 1:
                total_downtime += float(now - since)
            records.append(FailoverRecord(
                time=now, service_id=service_id,
                replica_id=replica.replica_id, role=role,
                from_node=source.node_id, to_node=target.node_id,
                metric=CPU_CORES, cores_moved=replica.cpu_cores,
                disk_moved_gb=replica.load(DISK_GB),
                downtime_seconds=total_downtime,
                rebuild_seconds=rebuild_seconds(replica.load(DISK_GB),
                                                record.replica_count),
                reason=REASON_NODE_FAILURE))
        self._pending = still_pending
        self._record_moves(records)

    def _record_moves(self, records: List[FailoverRecord]) -> None:
        """Log replica moves and notify listeners (downtime accounting)."""
        self.failovers.extend(records)
        for record in records:
            for listener in self._failover_listeners:
                listener(record)

    def add_failover_listener(self, listener: FailoverListener) -> None:
        """Register a callback invoked for every failover record."""
        self._failover_listeners.append(listener)

    # ------------------------------------------------------------------
    # ClusterView protocol (used by the PLB during moves)
    # ------------------------------------------------------------------

    def replica_count_of(self, service_id: str) -> int:
        return self.service(service_id).replica_count

    def promote_new_primary(self, service_id: str,
                            exclude_replica: int) -> None:
        """Promote a surviving secondary after the primary is moved."""
        record = self.service(service_id)
        survivors = [r for r in record.replicas
                     if r.replica_id != exclude_replica]
        if not survivors:
            return
        # Promote the secondary on the least CPU-loaded node for
        # determinism; ties break on replica id.
        def load_key(replica: Replica) -> tuple:
            node = self.nodes[replica.node_id] if replica.node_id is not None \
                else None
            util = node.utilization(CPU_CORES) if node else float("inf")
            return (util, replica.replica_id)

        promoted = min(survivors, key=load_key)
        promoted.role = ReplicaRole.PRIMARY

    def rebuilding_until(self, service_id: str) -> int:
        """Finish time of the service's in-flight rebuild (0 if none)."""
        return self._rebuilding_until.get(service_id, 0)

    def set_rebuilding(self, service_id: str, until: int) -> None:
        """Record that a replica rebuild runs until ``until``."""
        current = self._rebuilding_until.get(service_id, 0)
        self._rebuilding_until[service_id] = max(current, int(until))

    # ------------------------------------------------------------------

    def validate_invariants(self) -> None:
        """Assert structural invariants; used by tests and debug runs.

        * every replica is attached to exactly one node,
        * replicas of one service sit on distinct nodes,
        * every multi-replica service has exactly one primary,
        * node aggregates equal the sum of replica reports.
        """
        pending_ids = {replica.replica_id
                       for replica, *_ in self._pending}
        for record in self._services.values():
            node_ids = [r.node_id for r in record.replicas
                        if r.replica_id not in pending_ids]
            if None in node_ids:
                raise FabricError(
                    f"service {record.service_id} has an unplaced replica")
            if len(set(node_ids)) != len(node_ids):
                raise FabricError(
                    f"service {record.service_id} violates anti-affinity")
            primaries = [r for r in record.replicas if r.is_primary]
            if len(primaries) != 1:
                raise FabricError(
                    f"service {record.service_id} has {len(primaries)} primaries")
        for node in self.nodes:
            for metric in (CPU_CORES, DISK_GB, MEMORY_GB):
                expected = sum(r.load(metric) for r in node.replicas)
                if abs(expected - node.load(metric)) > 1e-6:
                    raise FabricError(
                        f"node {node.node_id} aggregate {metric} drifted: "
                        f"{node.load(metric)} != {expected}")
