"""The Placement and Load Balancer (PLB).

Paper §3.1: the PLB "decides the placement and movement of databases",
distributes a service's replicas across distinct nodes, aggregates the
dynamic load metrics, and — when a node's aggregate load exceeds the
node-level logical capacity — "will select a replica on the heavily
loaded node and move it to another node in the cluster" (a failover).

Placement search uses simulated annealing over candidate node sets, as
Service Fabric's PLB does (§5.2); a greedy mode exists as an ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PlacementError
from repro.fabric.annealing import anneal
from repro.fabric.backend import OrchestratorBackend, register_backend
from repro.fabric.failover import REASON_MAKE_ROOM, FailoverRecord
from repro.fabric.metrics import CPU_CORES, DISK_GB, MEMORY_GB
from repro.fabric.node import Node
from repro.fabric.replica import Replica

#: Metrics that cannot be freed by moving CPU reservations; hoisted so
#: the make-room scan does not rebuild the tuple per node (TL020).
_UNSHEDDABLE_METRICS = (DISK_GB, MEMORY_GB)

#: Hard cap on replica moves per violation sweep, so a cluster that is
#: globally out of disk cannot spin the balancer forever.
MAX_MOVES_PER_SWEEP = 64

#: Cap on proactive relocations the PLB performs to make room for one
#: new placement.
MAX_MAKE_ROOM_MOVES = 6


@dataclass
class PlbStats:
    """Counters exposed for telemetry and tests."""

    placements: int = 0
    placement_failures: int = 0
    moves: int = 0
    make_room_moves: int = 0
    stuck_violations: int = 0
    anneal_iterations: int = 0

    def as_metrics(self) -> Dict[str, int]:
        """Counter name -> value, in the field order declared above.

        The observability layer registers each entry as a cumulative
        counter (``toto_plb_<name>_total``, docs/OBSERVABILITY.md).
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}


class PlacementAndLoadBalancer(OrchestratorBackend):
    """Places replicas and fixes capacity violations by failing over.

    The reference :class:`~repro.fabric.backend.OrchestratorBackend`:
    simulated-annealing placement search as Service Fabric's PLB does
    it (§5.2), registered as ``"annealing"``.

    Args:
        nodes: the cluster's nodes (shared, live objects).
        rng: the PLB's private random stream. The paper could not pin
            this seed across repeated runs; experiments model that by
            deriving it per run unless explicitly pinned.
        use_annealing: when False, placement is purely greedy
            (best-fit); this is the ablation mode.
        anneal_iterations: annealing budget per placement decision.
        downtime_rng: dedicated stream for failover-downtime draws;
            defaults to ``rng``. Separating the two keeps the annealing
            draw sequence — and therefore every placement — unchanged
            no matter how many downtime samples a run takes.
    """

    name = "annealing"

    def __init__(self, nodes: Sequence[Node], rng: np.random.Generator,
                 use_annealing: bool = True,
                 anneal_iterations: int = 80,
                 cpu_weight: float = 1.0,
                 disk_weight: float = 0.05,
                 downtime_rng: np.random.Generator = None) -> None:
        self._nodes = list(nodes)
        self._rng = rng
        self._downtime_rng = downtime_rng if downtime_rng is not None else rng
        self.use_annealing = use_annealing
        self.anneal_iterations = anneal_iterations
        #: Placement-energy weights. CPU (the reservation metric) is
        #: the primary balancing objective, as in Service Fabric's
        #: default metric weighting; disk is governed *reactively*
        #: through capacity violations, so it gets a low proactive
        #: weight. (Weighting disk highly would mask the density
        #: effect the paper measures: placement would pre-balance away
        #: the very imbalance that causes failovers.)
        self.cpu_weight = cpu_weight
        self.disk_weight = disk_weight
        self.stats = PlbStats()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def find_placement(self, service_id: str, replica_count: int,
                       loads: Dict[str, float]) -> List[int]:
        """Choose ``replica_count`` distinct nodes for a new service.

        ``loads`` are the per-replica loads the placement must fit
        (CPU reservation plus initial disk/memory). Returns node ids;
        raises :class:`PlacementError` when no feasible assignment
        exists — the control plane turns that into a creation redirect.
        """
        feasible = self._feasible_nodes(service_id, loads)
        if len(feasible) < replica_count:
            self.stats.placement_failures += 1
            raise PlacementError(
                f"service {service_id} needs {replica_count} nodes, "
                f"only {len(feasible)} feasible")

        # Greedy seed: spread onto the nodes with the most free CPU.
        feasible.sort(key=lambda n: (-n.free(CPU_CORES), n.node_id))
        initial = tuple(node.node_id for node in feasible[:replica_count])
        if not self.use_annealing or len(feasible) == replica_count:
            self.stats.placements += 1
            return list(initial)

        by_id = {node.node_id: node for node in feasible}
        candidate_ids = [node.node_id for node in feasible]

        def energy(selection: Tuple[int, ...]) -> float:
            return self._selection_energy(selection, loads)

        def neighbour(selection: Tuple[int, ...],
                      rng: np.random.Generator) -> Tuple[int, ...]:
            chosen = list(selection)
            outside = [nid for nid in candidate_ids if nid not in selection]
            if not outside:
                return selection
            swap_at = int(rng.integers(len(chosen)))
            chosen[swap_at] = outside[int(rng.integers(len(outside)))]
            return tuple(chosen)

        result = anneal(initial, energy, neighbour, self._rng,
                        iterations=self.anneal_iterations)
        self.stats.anneal_iterations += result.iterations
        self.stats.placements += 1
        selection = list(result.state)  # type: ignore[arg-type]
        assert len(set(selection)) == len(selection)
        assert all(nid in by_id for nid in selection)
        return selection

    def make_room(self, now: int, service_id: str, replica_count: int,
                  loads: Dict[str, float],
                  cluster: "ClusterView") -> List[FailoverRecord]:
        """Relocate replicas so a blocked placement becomes feasible.

        Service Fabric's PLB does not give up when no node currently
        has headroom for a new replica: it balances existing replicas
        away first. This is what lets a higher-density cluster admit a
        large database that a lower-density cluster must redirect
        (the paper's §5.3.1 crossover). Returns the balancing moves
        performed (possibly none); the caller re-checks feasibility.
        """
        records: List[FailoverRecord] = []
        for _ in range(MAX_MAKE_ROOM_MOVES):
            feasible = self._feasible_nodes(service_id, loads)
            if len(feasible) >= replica_count:
                break
            move = self._one_make_room_move(now, service_id, loads, cluster)
            if move is None:
                break
            records.append(move)
        return records

    def _blocked_by_unsheddable(self, node: Node,
                                loads: Dict[str, float]) -> bool:
        """Whether disk/memory (not CPU) is what blocks this node."""
        return any(
            loads.get(metric, 0.0) > 0
            and node.free(metric) < loads.get(metric, 0.0)
            for metric in _UNSHEDDABLE_METRICS)

    def _movable_replicas(self, node: Node,
                          shortfall: float) -> List[Replica]:
        """Shed candidates on ``node``, best single move first."""
        return sorted(
            (r for r in node.replicas if r.cpu_cores > 0),
            key=lambda r: (r.cpu_cores < shortfall,  # prefer one-shot
                           r.is_primary,             # secondaries first
                           r.load(DISK_GB), r.replica_id))

    def _one_make_room_move(self, now: int, service_id: str,
                            loads: Dict[str, float],
                            cluster: "ClusterView"
                            ) -> Optional[FailoverRecord]:
        """Shed one replica from the node closest to hosting the new one."""
        needed_cpu = loads.get(CPU_CORES, 0.0)
        candidates = []
        for node in self._nodes:
            if node.hosts_service(service_id):
                continue
            if self._fits(node, loads):
                continue  # already feasible; nothing to free here
            # Only CPU can be freed by moving reservations; give up on
            # nodes blocked by disk or memory.
            if self._blocked_by_unsheddable(node, loads):
                continue
            if needed_cpu - node.free(CPU_CORES) > 0:
                candidates.append(node)
        candidates.sort(key=lambda node: (needed_cpu - node.free(CPU_CORES),
                                          node.node_id))
        for node in candidates:
            shortfall = needed_cpu - node.free(CPU_CORES)
            movable = self._movable_replicas(node, shortfall)
            for replica in movable:
                target = self._choose_target(replica, node)
                if target is None:
                    continue
                record = self._move(now, replica, node, target, CPU_CORES,
                                    cluster, reason=REASON_MAKE_ROOM)
                self.stats.make_room_moves += 1
                return record
        return None

    def _selection_energy(self, selection: Tuple[int, ...],
                          loads: Dict[str, float]) -> float:
        """Cluster imbalance after hypothetically placing on ``selection``.

        Sum of squared per-node utilizations over CPU and disk; squaring
        penalizes hot nodes, which is what drives load-spreading.
        """
        chosen = set(selection)
        energy = 0.0
        for node in self._nodes:
            cpu = node.load(CPU_CORES)
            disk = node.load(DISK_GB)
            if node.node_id in chosen:
                cpu += loads.get(CPU_CORES, 0.0)
                disk += loads.get(DISK_GB, 0.0)
            energy += self.cpu_weight * (cpu / node.capacities.cpu_cores) ** 2
            energy += self.disk_weight * (disk / node.capacities.disk_gb) ** 2
        return energy

    # ------------------------------------------------------------------
    # Capacity violations / failovers
    # ------------------------------------------------------------------

    def fix_violations(self, now: int, cluster: "ClusterView",
                       metric: str = DISK_GB) -> List[FailoverRecord]:
        """Move replicas off nodes whose ``metric`` load exceeds capacity.

        Mirrors §3.1: one replica at a time is selected on the heavily
        loaded node and moved to another node; repeats until the node is
        back under its logical capacity or no move is possible.
        """
        records: List[FailoverRecord] = []
        moves_left = MAX_MOVES_PER_SWEEP
        for node in self._nodes:
            if not node.available:
                continue
            while node.violates(metric) and moves_left > 0:
                record = self._relieve_node(now, node, metric, cluster)
                if record is None:
                    self.stats.stuck_violations += 1
                    break
                records.append(record)
                moves_left -= 1
        return records

    def _relieve_node(self, now: int, node: Node, metric: str,
                      cluster: "ClusterView") -> Optional[FailoverRecord]:
        """Move one replica off ``node`` to relieve a ``metric`` violation."""
        excess = node.load(metric) - node.capacities.of(metric)
        movable = [replica for replica in node.replicas
                   if replica.load(metric) > 0.0]
        if not movable:
            return None
        # Prefer the smallest replica that clears the violation in one
        # move (minimizes customer capacity moved); fall back through
        # progressively smaller replicas when the preferred one has no
        # feasible target — on a nearly full cluster, shedding load in
        # smaller pieces is how the violation still gets fixed (at the
        # cost of many more failovers, which is exactly the high-density
        # pain the paper quantifies).
        covering = sorted((r for r in movable if r.load(metric) >= excess),
                          key=lambda r: (r.load(metric), r.replica_id))
        non_covering = sorted((r for r in movable if r.load(metric) < excess),
                              key=lambda r: (-r.load(metric), r.replica_id))
        for replica in covering + non_covering:
            target = self._choose_target(replica, node)
            if target is not None:
                return self._move(now, replica, node, target, metric,
                                  cluster)
        return None

    def choose_target(self, replica: Replica,
                      source: Node) -> Optional[Node]:
        """Target selection for externally driven moves (node failures)."""
        return self._choose_target(replica, source)

    def _choose_target(self, replica: Replica,
                       source: Node) -> Optional[Node]:
        """Best node to receive ``replica`` (least disk-utilized fit)."""
        candidates = []
        for node in self._nodes:
            if node.node_id == source.node_id:
                continue
            if node.hosts_service(replica.service_id):
                continue
            if not self._fits(node, replica.reported):
                continue
            candidates.append(node)
        if not candidates:
            return None
        if self.use_annealing and len(candidates) > 1:
            # Annealing over a single choice degenerates to a softmax-ish
            # randomized pick among the best few targets — keep the top
            # three by projected disk utilization and pick randomly.
            candidates.sort(key=lambda n: ((n.load(DISK_GB)
                                            + replica.load(DISK_GB))
                                           / n.capacities.disk_gb,
                                           n.node_id))
            top = candidates[:3]
            return top[int(self._rng.integers(len(top)))]
        return min(candidates,
                   key=lambda n: ((n.load(DISK_GB) + replica.load(DISK_GB))
                                  / n.capacities.disk_gb, n.node_id))

class ClusterView:
    """Protocol the PLB needs from the cluster facade.

    Documented as a plain base class (duck typing would do, but the
    explicit contract keeps the dependency direction visible).
    """

    def replica_count_of(self, service_id: str) -> int:
        raise NotImplementedError

    def promote_new_primary(self, service_id: str,
                            exclude_replica: int) -> None:
        raise NotImplementedError

    def rebuilding_until(self, service_id: str) -> int:
        """Timestamp until which a replica rebuild is in flight (0 if
        none)."""
        raise NotImplementedError

    def set_rebuilding(self, service_id: str, until: int) -> None:
        raise NotImplementedError


register_backend("annealing", PlacementAndLoadBalancer)
