"""Service-Fabric-like cluster orchestrator substrate.

The paper's Toto implementation sits on Microsoft Service Fabric (SF):
nodes host service replicas, each replica reports *dynamic load
metrics* to the Placement and Load Balancer (PLB), every metric has a
node-level *logical capacity*, and when a node's aggregate load
exceeds that capacity the PLB fails a replica over to another node.
SF's PLB searches placements with simulated annealing, which is the
source of run-to-run non-determinism the paper quantifies in §5.3.4.

This package reproduces exactly those mechanics:

* :mod:`repro.fabric.metrics` — metric names and node capacities;
* :mod:`repro.fabric.node` / :mod:`repro.fabric.replica` — the hosted
  topology with incremental load aggregation;
* :mod:`repro.fabric.naming` — the Naming Service metastore that Toto
  uses both for model XML distribution and persisted disk loads;
* :mod:`repro.fabric.annealing` — a small simulated-annealing search;
* :mod:`repro.fabric.backend` — the pluggable orchestrator-backend
  protocol and registry (docs/ORCHESTRATORS.md);
* :mod:`repro.fabric.plb` — the ``"annealing"`` backend: placement,
  balancing and capacity-violation fixes (failovers);
* :mod:`repro.fabric.k8s` — the ``"k8s"`` backend: a Kubernetes-style
  requests/limits scheduler with priority preemption;
* :mod:`repro.fabric.cluster` — the cluster facade tying it together.
"""

from repro.fabric.backend import (
    OrchestratorBackend,
    backend_names,
    create_backend,
    register_backend,
)
from repro.fabric.cluster import ServiceFabricCluster
from repro.fabric.failover import FailoverRecord
from repro.fabric.k8s import KubernetesBackend, ResourceSpec
from repro.fabric.metrics import (
    CPU_CORES,
    DISK_GB,
    MEMORY_GB,
    NodeCapacities,
)
from repro.fabric.naming import NamingService
from repro.fabric.node import Node
from repro.fabric.plb import PlacementAndLoadBalancer
from repro.fabric.replica import Replica, ReplicaRole

__all__ = [
    "CPU_CORES",
    "DISK_GB",
    "MEMORY_GB",
    "FailoverRecord",
    "KubernetesBackend",
    "NamingService",
    "Node",
    "NodeCapacities",
    "OrchestratorBackend",
    "PlacementAndLoadBalancer",
    "Replica",
    "ReplicaRole",
    "ResourceSpec",
    "ServiceFabricCluster",
    "backend_names",
    "create_backend",
    "register_backend",
]
