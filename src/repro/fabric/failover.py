"""Failover records and cost model.

Paper §3.1: exceeding a node's logical capacity forces the PLB to move
a replica out; "while a failover to the primary is occurring, the
application may experience a brief moment of unavailability while a
secondary replica is becoming the primary or a new primary replica is
built". §5.3.2 adds that moving Premium/BC replicas "is much more
costly due to the higher disk usage" because the data must be
physically copied, whereas Standard/GP storage is detached/reattached.

The downtime constants below are synthetic but ordered like production:
a GP reattach takes tens of seconds; a BC primary swap is a fast
promotion; a BC secondary move causes no customer-visible downtime.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.fabric.replica import Replica, ReplicaRole

#: Detach/reattach window for a single-replica (remote-store) database:
#: the remote files are detached, a replica restarted on the new node,
#: and connections re-established.
GP_FAILOVER_DOWNTIME_RANGE = (30.0, 90.0)
#: Promotion of an existing secondary for a local-store database.
BC_PRIMARY_PROMOTION_RANGE = (8.0, 25.0)
#: Planned (make-room) moves drain gracefully; the blip is seconds.
PLANNED_MOVE_DOWNTIME_RANGE = (1.0, 5.0)
#: Effective copy bandwidth for rebuilding a BC replica (GB/s); only
#: affects how long the move occupies the cluster, not availability.
BC_REBUILD_GBPS = 0.35


#: The PLB moved a replica because a node exceeded a metric's logical
#: capacity — the paper's "failover" (§3.1).
REASON_CAPACITY_VIOLATION = "capacity-violation"
#: The PLB proactively relocated a replica to make room for a new
#: placement (Service Fabric's balancing-for-placement behaviour).
#: Customers still feel the move, but it is not a capacity failover.
REASON_MAKE_ROOM = "make-room"
#: A node went down and its replicas were rebuilt elsewhere — the
#: "intermittent failures that also happen in production" (§5.2).
REASON_NODE_FAILURE = "node-failure"


@dataclass(frozen=True)
class FailoverRecord:
    """One replica move performed by the PLB."""

    time: int
    service_id: str
    replica_id: int
    role: ReplicaRole
    from_node: int
    to_node: int
    metric: str
    cores_moved: float
    disk_moved_gb: float
    downtime_seconds: float
    rebuild_seconds: float
    reason: str = REASON_CAPACITY_VIOLATION

    @property
    def is_primary(self) -> bool:
        return self.role is ReplicaRole.PRIMARY

    @property
    def is_capacity_failover(self) -> bool:
        """True for the moves the paper's Figure 12(b) counts."""
        return self.reason == REASON_CAPACITY_VIOLATION


def failover_downtime(replica: Replica, replica_count: int,
                      rng: np.random.Generator,
                      planned: bool = False) -> float:
    """Customer-visible downtime (seconds) caused by moving ``replica``.

    Single-replica services incur the reattach window; for
    multi-replica services only the primary swap is visible. Planned
    (make-room) moves drain connections gracefully and cost seconds;
    reactive capacity failovers are abrupt.

    ``rng`` must be a dedicated stream — in assembled rings the named
    ``("failover", "downtime")`` substream of the run's
    :class:`repro.rng.RngRegistry` — so downtime draws never perturb
    placement decisions (see ``tests/test_failover_model.py`` for the
    pinned draw-sequence regression).
    """
    if replica_count > 1 and not replica.is_primary:
        return 0.0
    if planned:
        low, high = PLANNED_MOVE_DOWNTIME_RANGE
        return float(rng.uniform(low, high))
    if replica_count <= 1:
        low, high = GP_FAILOVER_DOWNTIME_RANGE
        return float(rng.uniform(low, high))
    low, high = BC_PRIMARY_PROMOTION_RANGE
    return float(rng.uniform(low, high))


def rebuild_seconds(disk_gb: float, replica_count: int) -> float:
    """Background data-copy time for the move (0 for remote-store)."""
    if replica_count <= 1:
        return 0.0
    return disk_gb / BC_REBUILD_GBPS
