"""Azure-SQL-DB-like service substrate.

Implements the service pieces Toto is built into (paper §2-3):

* :mod:`repro.sqldb.editions` / :mod:`repro.sqldb.slo` — the service
  tier taxonomy: remote-store Standard/GP (one replica, tempdb-only
  local disk) vs. local-store Premium/BC (four replicas, full data on
  local SSD), each with an SLO catalog of core/memory configurations;
* :mod:`repro.sqldb.database` — database instances and their lifecycle;
* :mod:`repro.sqldb.rgmanager` — the per-node resource-governance
  daemon whose metric-report RPC path Toto intercepts;
* :mod:`repro.sqldb.control_plane` — CRUD APIs with admission control
  and creation redirects;
* :mod:`repro.sqldb.tenant_ring` — one stage cluster wired end to end;
* :mod:`repro.sqldb.population` — representative initial populations
  (paper Table 2).
"""

from repro.sqldb.control_plane import ControlPlane, CreationRedirect
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.editions import Edition, StorageKind
from repro.sqldb.elastic_pool import (
    ElasticPool,
    ElasticPoolManager,
    PoolMember,
)
from repro.sqldb.governance import CpuGovernor, GovernanceReport
from repro.sqldb.region import Region, RegionalCreateOutcome
from repro.sqldb.population import InitialPopulationSpec, PopulationMix
from repro.sqldb.rgmanager import RgManager
from repro.sqldb.slo import SLO_CATALOG, ServiceLevelObjective, get_slo
from repro.sqldb.tenant_ring import TenantRing, TenantRingConfig

__all__ = [
    "ControlPlane",
    "CpuGovernor",
    "CreationRedirect",
    "DatabaseInstance",
    "Edition",
    "GovernanceReport",
    "Region",
    "RegionalCreateOutcome",
    "ElasticPool",
    "ElasticPoolManager",
    "PoolMember",
    "InitialPopulationSpec",
    "PopulationMix",
    "RgManager",
    "SLO_CATALOG",
    "ServiceLevelObjective",
    "StorageKind",
    "TenantRing",
    "TenantRingConfig",
    "get_slo",
]
