"""The control plane: CRUD APIs, admission control, creation redirects.

Paper §5.3.1: "A creation redirect will occur when the cluster does
not have enough cores to satisfy the creation request. Instead of
being placed in this tenant ring, the database will be redirected to
another tenant ring that has enough capacity."

Admission therefore checks the cluster-wide reserved-core budget *and*
actual placement feasibility (a 4-replica BC needs four distinct nodes
with room); either failing produces a redirect, which Figure 10 plots
cumulatively per density level.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import (
    AdmissionRejected,
    PlacementError,
    RetryBudgetExceeded,
    UnknownDatabaseError,
)
from repro.fabric.cluster import ServiceFabricCluster
from repro.fabric.failover import FailoverRecord
from repro.fabric.metrics import CPU_CORES, DISK_GB, MEMORY_GB
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.dbcolumns import DatabaseStateColumns, columnar_enabled
from repro.sqldb.editions import COLD_BUFFER_POOL_GB, Edition
from repro.sqldb.rgmanager import clear_persisted_loads
from repro.sqldb.slo import ServiceLevelObjective, get_slo


@dataclass(frozen=True)
class CreationRedirect:
    """A create request this ring could not admit (paper Figure 10)."""

    time: int
    slo_name: str
    edition: Edition
    requested_cores: int
    free_cores: float
    reason: str


class ControlPlane:
    """CRUD front door of one tenant ring."""

    def __init__(self, cluster: ServiceFabricCluster) -> None:
        self._cluster = cluster
        self._databases: Dict[str, DatabaseInstance] = {}  # totolint: fleet-scale
        # Active subset, maintained on create/drop. ``_databases`` keeps
        # every database ever created and grows without bound over a
        # multi-day run, while the active set is bounded by cluster
        # capacity — per-event queries must scan this one (TL022).
        self._active: Dict[str, DatabaseInstance] = {}
        #: Shared struct-of-arrays lifecycle state for every database
        #: this control plane creates (``None`` = object-graph path).
        self._columns: Optional[DatabaseStateColumns] = (
            DatabaseStateColumns() if columnar_enabled() else None)
        self._db_ids = itertools.count(1)
        self.redirects: List[CreationRedirect] = []
        self.creates_succeeded = 0
        self.drops_executed = 0
        self._creation_listeners: List[Callable[[DatabaseInstance], None]] = []
        self._drop_listeners: List[Callable[[DatabaseInstance], None]] = []
        #: Optional fault injector gating create/drop calls.
        self.chaos = None
        cluster.add_failover_listener(self._on_failover)

    def attach_chaos(self, chaos) -> None:
        """Install a fault injector on the create/drop paths."""
        self.chaos = chaos

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def cluster(self) -> ServiceFabricCluster:
        return self._cluster

    def database(self, db_id: str) -> DatabaseInstance:
        database = self._databases.get(db_id)
        if database is None:
            raise UnknownDatabaseError(f"unknown database '{db_id}'")
        return database

    def all_databases(self) -> List[DatabaseInstance]:
        """Every database ever created (including dropped ones)."""
        return list(self._databases.values())

    def active_databases(self,
                         edition: Optional[Edition] = None
                         ) -> List[DatabaseInstance]:
        """Currently hosted databases, optionally filtered by edition."""
        if edition is None:
            return list(self._active.values())
        return [db for db in self._active.values()
                if db.edition is edition]

    def active_count(self, edition: Optional[Edition] = None) -> int:
        if edition is None:
            return len(self._active)
        return len(self.active_databases(edition))

    def redirect_count(self) -> int:
        return len(self.redirects)

    # ------------------------------------------------------------------
    # Create / Drop
    # ------------------------------------------------------------------

    def create_database(self, slo_name: str, now: int,
                        initial_data_gb: float,
                        high_initial_growth: bool = False,
                        initial_growth_total_gb: float = 0.0,
                        rapid_growth: bool = False,
                        from_bootstrap: bool = False) -> DatabaseInstance:
        """Admit and place a new database.

        Raises :class:`AdmissionRejected` (recording a creation
        redirect) when the ring lacks capacity; the caller — normally
        the Population Manager — treats that as "sent to another ring".
        """
        slo = get_slo(slo_name)
        required_cores = slo.total_reserved_cores
        free_cores = self._cluster.free_capacity(CPU_CORES)
        if self.chaos is not None:
            try:
                self.chaos.control_plane_gate("create", now)
            except RetryBudgetExceeded as exc:
                # The create API stayed unreachable past the retry
                # budget; the request is redirected to another ring
                # exactly like a capacity rejection (§5.3.1 semantics).
                self._record_redirect(now, slo, free_cores,
                                      reason="chaos-create-timeout")
                raise AdmissionRejected(
                    f"create of {slo_name} timed out against the "
                    "control plane",
                    required_cores=required_cores,
                    free_cores=int(free_cores)) from exc
        if free_cores < required_cores:
            self._record_redirect(now, slo, free_cores,
                                  reason="insufficient-cluster-cores")
            raise AdmissionRejected(
                f"ring has {free_cores:.0f} free cores, "
                f"{slo_name} needs {required_cores}",
                required_cores=required_cores, free_cores=int(free_cores))

        db_id = f"db-{next(self._db_ids):05d}"
        database = DatabaseInstance(
            db_id=db_id, slo=slo, created_at=now,
            initial_data_gb=initial_data_gb,
            high_initial_growth=high_initial_growth,
            initial_growth_total_gb=initial_growth_total_gb,
            rapid_growth=rapid_growth,
            from_bootstrap=from_bootstrap,
            state=self._columns,
        )
        initial_loads = {
            DISK_GB: database.initial_local_disk_gb(),
            MEMORY_GB: min(COLD_BUFFER_POOL_GB, slo.memory_gb),
        }
        try:
            self._cluster.create_service(
                service_id=db_id, replica_count=slo.replica_count,
                cpu_cores=float(slo.cores), initial_loads=initial_loads,
                now=now)
        except PlacementError as exc:
            # During bootstrap the population *must* land — a redirect
            # here would silently shrink the Table 2 population the
            # whole run is parameterized on. Big-first packing can
            # wedge a wide ring (free cores and free disk end up on
            # disjoint nodes), so ask the backend for a spill: swap
            # replicas between nodes until the placement fits, then
            # retry once. Steady-state creates keep redirecting — that
            # is the §5.3.1 KPI.
            placed = False
            if from_bootstrap:
                swaps = self._cluster.bootstrap_spill(
                    service_id=db_id, replica_count=slo.replica_count,
                    cpu_cores=float(slo.cores),
                    initial_loads=initial_loads, now=now)
                if swaps:
                    try:
                        self._cluster.create_service(
                            service_id=db_id,
                            replica_count=slo.replica_count,
                            cpu_cores=float(slo.cores),
                            initial_loads=initial_loads, now=now)
                        placed = True
                    except PlacementError:
                        placed = False
            if not placed:
                self._record_redirect(now, slo, free_cores,
                                      reason="placement-infeasible")
                raise AdmissionRejected(
                    f"no feasible placement for {slo_name}: {exc}",
                    required_cores=required_cores,
                    free_cores=int(free_cores)) from exc

        self._databases[db_id] = database
        self._active[db_id] = database
        self.creates_succeeded += 1
        for listener in self._creation_listeners:
            listener(database)
        return database

    def drop_database(self, db_id: str, now: int) -> DatabaseInstance:
        """Drop an active database and release its capacity.

        Raises :class:`repro.errors.RetryBudgetExceeded` when an
        injected control-plane outage outlasts the retry budget; the
        database stays active and the caller retries the drop later.
        """
        database = self.database(db_id)
        if self.chaos is not None:
            self.chaos.control_plane_gate("drop", now)
        record = self._cluster.service(db_id)
        dropped_replica_ids = [r.replica_id for r in record.replicas]
        database.mark_dropped(now)
        del self._active[db_id]
        self._cluster.drop_service(db_id)
        clear_persisted_loads(self._cluster.naming, db_id)
        self.drops_executed += 1
        database.dropped_replica_ids = dropped_replica_ids
        for listener in self._drop_listeners:
            listener(database)
        return database

    def add_creation_listener(
            self, listener: Callable[[DatabaseInstance], None]) -> None:
        """Register a callback invoked after every successful create."""
        self._creation_listeners.append(listener)

    def add_drop_listener(
            self, listener: Callable[[DatabaseInstance], None]) -> None:
        """Register a callback invoked after every drop."""
        self._drop_listeners.append(listener)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _record_redirect(self, now: int, slo: ServiceLevelObjective,
                         free_cores: float, reason: str) -> None:
        self.redirects.append(CreationRedirect(
            time=now, slo_name=slo.name, edition=slo.edition,
            requested_cores=slo.total_reserved_cores,
            free_cores=free_cores, reason=reason))

    def _on_failover(self, record: FailoverRecord) -> None:
        """Attribute a failover's downtime to the affected database.

        SLA accounting is minute-granular (as in the public Azure SLA:
        "total accumulated minutes ... the database was unavailable"),
        so any customer-visible *unplanned* interruption books at least
        one full minute. Planned make-room moves drain gracefully and
        book only their actual seconds.
        """
        database = self._databases.get(record.service_id)
        if database is None or not database.is_active:
            return
        downtime = record.downtime_seconds
        if downtime <= 0:
            return
        if record.is_capacity_failover:
            downtime = 60.0 * math.ceil(downtime / 60.0)
        database.record_downtime(downtime)
