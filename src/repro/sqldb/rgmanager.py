"""RgManager: the per-node resource-governance daemon.

Paper §3.2: "There is a single RgManager instance running on every
node [...] when a replica for a SQL database needs to report its CPU,
memory, and disk usage to PLB, it first consults RgManager by issuing
an RPC."

Toto's hook (§3.3.1): "We implemented Toto to leverage the existing
Azure SQL DB infrastructure by redirecting the metric request RPCs in
RgManager to sample from defined models instead of returning the
actual resource utilization. [...] If no model exists for the replica
and the load metric that is being reported, the replica's actual load
usage will be reported — this is the normal operating behavior."

Persistence semantics (§3.3.2) are implemented exactly as described:

* non-persisted metrics keep the previous value in RgManager *memory*,
  so a replica that fails over to another node loses its history and
  the model resets (memory, GP tempdb);
* persisted metrics store the previous value in the Naming Service;
  only the **primary** executes the model and writes the new value,
  while secondaries merely read and report it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.model_base import ModelContext, ResourceModel, TotoModelSet
from repro.errors import NamingUnavailableError
from repro.fabric.metrics import CPU_USED_CORES, DISK_GB, MEMORY_GB
from repro.fabric.naming import NamingService
from repro.fabric.replica import Replica
from repro.rng import BatchedStream, RngRegistry
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.governance import CpuGovernor

#: Metrics a replica re-reports every interval (CPU reservations are
#: static and never re-reported).
DYNAMIC_METRICS = (DISK_GB, MEMORY_GB)


def persisted_load_key(db_id: str, metric: str) -> str:
    """Naming-Service key under which a persisted load is stored."""
    return f"toto/load/{db_id}/{metric}"


#: Prefix distinguishing the node-local last-known-good mirror of a
#: *persisted* metric from ordinary non-persisted memory entries in
#: the same ``(replica_id, metric-key)`` map.
_MIRROR_PREFIX = "lkg:"


class RgManager:
    """One node's resource governor with the Toto interception hook.

    Args:
        node_id: the node this instance runs on.
        naming: the cluster's Naming Service (shared).
        rng_registry: seeded stream source; each (node, metric) pair
            gets its own stream, mirroring the paper's per-node seeds
            ("a unique seed was provided to every node", §5.2).
        start_weekday: weekday of simulation time zero.
    """

    def __init__(self, node_id: int, naming: NamingService,
                 rng_registry: RngRegistry, start_weekday: int = 0) -> None:
        self.node_id = node_id
        self.naming = naming
        self._rng_registry = rng_registry
        self.start_weekday = start_weekday
        #: The active model set; replaced on every XML refresh. None
        #: means Toto is not injected and actual loads pass through.
        self.model_set: Optional[TotoModelSet] = None
        #: Node-local previous values for non-persisted metrics,
        #: keyed metric -> replica id -> value. Lost when a replica
        #: moves to a different node — the intended reset semantics.
        #: Two-level (rather than tuple-keyed) so dropping a replica
        #: touches a handful of small maps instead of scanning every
        #: key, and the hot report loop pays one lookup per metric,
        #: not one tuple allocation per value.
        self._memory: Dict[str, Dict[int, float]] = {}
        #: Version of the model XML this instance last parsed.
        self.model_version = 0
        self.rpcs_served = 0
        #: Optional noisy-neighbor CPU governor (§3.2 / §5.5). When
        #: set, the advisory modeled CPU usage of every hosted replica
        #: is tracked and throttled node-wide each sweep.
        self.governor: Optional[CpuGovernor] = None
        self._cpu_usage_raw: Dict[int, float] = {}
        self.cpu_usage_governed: Dict[int, float] = {}
        #: Metric-report RPCs answered from node-local last-known-good
        #: state because the Naming Service stayed unreachable past the
        #: retry budget.
        self.naming_degraded = 0
        #: Per-metric stream handles. The registry already memoizes by
        #: spawn key, but deriving that key hashes the name path — too
        #: hot for a lookup that happens on every metric-report RPC.
        self._streams: Dict[str, np.random.Generator] = {}

    # ------------------------------------------------------------------

    def install_models(self, model_set: Optional[TotoModelSet],
                       version: int) -> None:
        """Replace the active model set (called by the XML refresh)."""
        self.model_set = model_set
        self.model_version = version

    def observability_counters(self) -> Dict[str, int]:
        """Cumulative per-node counters for the metric registry.

        Summed across the ring into ``toto_rgmanager_*_total``
        (docs/OBSERVABILITY.md); reading them has no side effects.
        """
        return {"rpcs_served": self.rpcs_served,
                "naming_degraded": self.naming_degraded}

    def forget_replica(self, replica_id: int) -> None:
        """Drop node-local state for a replica that left this node."""
        for per_metric in self._memory.values():
            per_metric.pop(replica_id, None)
        self._cpu_usage_raw.pop(replica_id, None)
        self.cpu_usage_governed.pop(replica_id, None)

    def _metric_memory(self, metric: str) -> Dict[int, float]:
        """The per-replica memory map of one metric (created lazily)."""
        per_metric = self._memory.get(metric)
        if per_metric is None:
            per_metric = {}
            self._memory[metric] = per_metric
        return per_metric

    def _stream(self, metric: str) -> np.random.Generator:
        stream = self._streams.get(metric)
        if stream is None:
            stream = self._rng_registry.stream(
                "rgmanager", self.node_id, metric)  # totolint: substream=rgmanager/*/*
            self._streams[metric] = stream
        return stream

    # ------------------------------------------------------------------

    def get_metric_loads(self, replica: Replica, database: DatabaseInstance,
                         now: int, interval_seconds: int,
                         observe_cpu: bool = True) -> Dict[str, float]:
        """Answer the replica's metric-report RPC.

        Returns the loads the replica should report to the PLB for
        every dynamic metric: model-driven where a model applies,
        otherwise the replica's actual (last reported) load.

        ``observe_cpu=False`` skips the advisory CPU-usage sampling;
        the caller then owes a :meth:`observe_cpu_usage_batch` for this
        replica before governance runs (the report sweep batches all of
        a node's CPU draws into one vectorized call).
        """
        self.rpcs_served += 1
        loads: Dict[str, float] = {}
        for metric in DYNAMIC_METRICS:
            model = (self.model_set.find(metric, database)
                     if self.model_set is not None else None)
            if model is None:
                loads[metric] = replica.load(metric)
            elif model.persisted:
                loads[metric] = self._persisted_value(
                    model, replica, database, now, interval_seconds, metric)
            else:
                loads[metric] = self._memory_value(
                    model, replica, database, now, interval_seconds, metric)
        if observe_cpu:
            self._observe_cpu_usage(replica, database, now, interval_seconds)
        return loads

    def observe_cpu_usage_batch(
            self, replicas: Sequence[Replica],
            databases: Sequence[DatabaseInstance],
            now: int, interval_seconds: int) -> None:
        """Vectorized advisory CPU sampling for one sweep (§3.2).

        ``replicas``/``databases`` are parallel sequences — every
        (replica, database) pair that reported from this node this
        sweep, in report order. All replicas draw from the same
        per-node CPU substream, so the whole sweep's utilization
        draws collapse into one masked array-parameter normal call —
        draw-for-draw identical to the scalar per-RPC path because the
        per-entry (mu, sigma) sequence and the stream order are both
        preserved. Models without the batched interface (anything but
        :class:`~repro.core.cpu_model.CpuUsageModel`) fall back to the
        scalar path in place, keeping the stream sequence exact.
        """
        if self.model_set is None:
            return
        batch_replicas: List[Replica] = []
        batch_databases: List[DatabaseInstance] = []
        batch_models: List[object] = []
        mus: List[float] = []
        sigmas: List[float] = []
        cpu_memory = self._metric_memory(CPU_USED_CORES)
        usage_raw = self._cpu_usage_raw

        def flush() -> None:
            if not batch_models:
                return
            draws = BatchedStream(self._stream(CPU_USED_CORES)).normals(
                mus, sigmas)
            for replica, database, model, draw in zip(
                    batch_replicas, batch_databases, batch_models, draws):
                value = model.value_from_utilization(
                    float(draw), replica.is_primary, database)
                cpu_memory[replica.replica_id] = value
                usage_raw[replica.replica_id] = value
            batch_replicas.clear()
            batch_databases.clear()
            batch_models.clear()
            mus.clear()
            sigmas.clear()

        for replica, database in zip(replicas, databases):
            model = self.model_set.find(CPU_USED_CORES, database)
            if model is None:
                continue
            if hasattr(model, "utilization_params"):
                mu, sigma = model.utilization_params(now)
                batch_replicas.append(replica)
                batch_databases.append(database)
                batch_models.append(model)
                mus.append(mu)
                sigmas.append(sigma)
            else:
                flush()
                self._observe_cpu_usage(replica, database, now,
                                        interval_seconds)
        flush()

    def _observe_cpu_usage(self, replica: Replica,
                           database: DatabaseInstance, now: int,
                           interval_seconds: int) -> None:
        """Sample the advisory CPU-usage model for governance (§3.2).

        The value never reaches the PLB — it feeds the node-local
        noisy-neighbor governor, which runs once per sweep via
        :meth:`apply_cpu_governance`.
        """
        if self.model_set is None:
            return
        model = self.model_set.find(CPU_USED_CORES, database)
        if model is None:
            return
        value = self._memory_value(model, replica, database, now,
                                   interval_seconds, CPU_USED_CORES)
        self._cpu_usage_raw[replica.replica_id] = value

    def apply_cpu_governance(self, interval_seconds: int) -> None:
        """Run the node's CPU governor over the last sweep's usage."""
        if self.governor is None or not self._cpu_usage_raw:
            return
        self.cpu_usage_governed = self.governor.govern(
            self._cpu_usage_raw, interval_seconds)

    def node_cpu_usage(self, governed: bool = True) -> float:
        """Total advisory CPU usage on this node (cores)."""
        source = self.cpu_usage_governed if governed and \
            self.cpu_usage_governed else self._cpu_usage_raw
        return float(sum(source.values()))

    # ------------------------------------------------------------------

    def _context(self, replica: Replica, database: DatabaseInstance,
                 now: int, interval_seconds: int,
                 previous: Optional[float], metric: str) -> ModelContext:
        return ModelContext(
            now=now,
            interval_seconds=interval_seconds,
            database=database,
            is_primary=replica.is_primary,
            previous_value=previous,
            rng=self._stream(metric),
            start_weekday=self.start_weekday,
        )

    def _memory_value(self, model: ResourceModel, replica: Replica,
                      database: DatabaseInstance, now: int,
                      interval_seconds: int, metric: str) -> float:
        """Non-persisted path: previous value lives in node memory."""
        memory = self._metric_memory(metric)
        previous = memory.get(replica.replica_id)
        context = self._context(replica, database, now, interval_seconds,
                                previous, metric)
        value = model.next_value(context)
        memory[replica.replica_id] = value
        return value

    def _persisted_value(self, model: ResourceModel, replica: Replica,
                         database: DatabaseInstance, now: int,
                         interval_seconds: int, metric: str) -> float:
        """Persisted path (§3.3.2).

        Only the primary executes the model and writes the new value
        back to the Naming Service; secondaries report whatever is
        stored, guaranteeing a newly promoted primary resumes from the
        previous primary's load.

        Graceful degradation: when the Naming Service stays unreachable
        past the retry budget (an injected outage), the node falls back
        to its last-known-good mirror of the persisted value and keeps
        reporting — losing durability for the window, never the run.
        """
        key = persisted_load_key(database.db_id, metric)
        try:
            previous = self.naming.get_or_default(key)
        except NamingUnavailableError:
            self.naming_degraded += 1
            return self._degraded_persisted_value(
                model, replica, database, now, interval_seconds, metric)
        context = self._context(replica, database, now, interval_seconds,
                                previous, metric)
        mirror = self._metric_memory(_MIRROR_PREFIX + metric)
        if replica.is_primary:
            value = model.next_value(context)
            try:
                self.naming.put(key, value)
            except NamingUnavailableError:
                # Outage began between the read and the write-back; the
                # value still stands, it is just not durable yet.
                self.naming_degraded += 1
            mirror[replica.replica_id] = value
            return value
        if previous is None:
            # No primary has reported yet (e.g. secondary reports first
            # in the very first round): fall back to the model's initial
            # value without persisting it — the primary owns the write.
            return model.initial_value(context)
        mirror[replica.replica_id] = float(previous)
        return float(previous)

    def _degraded_persisted_value(self, model: ResourceModel,
                                  replica: Replica,
                                  database: DatabaseInstance, now: int,
                                  interval_seconds: int,
                                  metric: str) -> float:
        """Persisted path while the metastore is unreachable."""
        mirror = self._metric_memory(_MIRROR_PREFIX + metric)
        previous = mirror.get(replica.replica_id)
        context = self._context(replica, database, now, interval_seconds,
                                previous, metric)
        if replica.is_primary:
            value = model.next_value(context)
            mirror[replica.replica_id] = value
            return value
        if previous is None:
            return model.initial_value(context)
        return float(previous)


def clear_persisted_loads(naming: NamingService, db_id: str) -> None:
    """Remove a dropped database's persisted loads from the metastore."""
    for key in naming.keys(prefix=f"toto/load/{db_id}/"):
        naming.delete_if_exists(key)
