"""Service Level Objective (SLO) catalog.

Paper §2: "The Service Level Objectives (SLOs) in each edition and
hardware SKU have different configurations such as the amount of
compute units (cores) or the amount of DRAM memory available to the
SQL process."

The catalog mirrors the public gen5 vCore ladder (2-32 vCores). Memory
scales at the gen5 ratio of ~5.1 GB per vCore; maximum data size caps
follow the public service limits loosely. Prices live in
:mod:`repro.revenue.pricing` keyed by SLO name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import UnknownSloError
from repro.sqldb.editions import Edition

#: gen5 DRAM-per-vCore ratio (GB).
MEMORY_PER_CORE_GB = 5.1

#: Core sizes offered on gen5 in both families.
CORE_SIZES: Tuple[int, ...] = (2, 4, 6, 8, 16, 24, 32)


@dataclass(frozen=True)
class ServiceLevelObjective:
    """One purchasable database configuration."""

    name: str
    edition: Edition
    cores: int
    memory_gb: float
    max_data_gb: float

    @property
    def replica_count(self) -> int:
        """Replicas the orchestrator must place for this SLO."""
        return self.edition.replica_count

    @property
    def total_reserved_cores(self) -> int:
        """Cores the cluster must reserve across all replicas.

        The paper's 24-core BC example reserves 96 cluster cores
        ("replicated x4, 96 cores total", §5.3.1).
        """
        return self.cores * self.replica_count

    def __str__(self) -> str:
        return self.name


def _build_catalog() -> Dict[str, ServiceLevelObjective]:
    catalog: Dict[str, ServiceLevelObjective] = {}
    for edition, prefix in ((Edition.STANDARD_GP, "GP"),
                            (Edition.PREMIUM_BC, "BC")):
        for cores in CORE_SIZES:
            name = f"{prefix}_Gen5_{cores}"
            # GP data lives in remote storage with a generous cap; BC is
            # bounded by the local SSD and scales with the SLO size.
            if edition is Edition.STANDARD_GP:
                max_data = 4096.0
            else:
                max_data = min(4096.0, 1024.0 + 96.0 * cores)
            catalog[name] = ServiceLevelObjective(
                name=name,
                edition=edition,
                cores=cores,
                memory_gb=round(MEMORY_PER_CORE_GB * cores, 1),
                max_data_gb=max_data,
            )
    return catalog


SLO_CATALOG: Dict[str, ServiceLevelObjective] = _build_catalog()


def get_slo(name: str) -> ServiceLevelObjective:
    """Look up an SLO by name; raises :class:`UnknownSloError`."""
    slo = SLO_CATALOG.get(name)
    if slo is None:
        raise UnknownSloError(
            f"unknown SLO '{name}'; known: {sorted(SLO_CATALOG)}")
    return slo


def slos_for_edition(edition: Edition) -> List[ServiceLevelObjective]:
    """All SLOs of one edition, ordered by core count."""
    return sorted((slo for slo in SLO_CATALOG.values()
                   if slo.edition is edition),
                  key=lambda slo: slo.cores)


def slo_name(edition: Edition, cores: int) -> str:
    """Canonical SLO name for an edition/core pair."""
    prefix = "GP" if edition is Edition.STANDARD_GP else "BC"
    name = f"{prefix}_Gen5_{cores}"
    if name not in SLO_CATALOG:
        raise UnknownSloError(f"no {cores}-core SLO in {edition.value}")
    return name
