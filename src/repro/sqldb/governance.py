"""Node-level CPU governance (noisy-neighbor mitigation).

Paper §3.2: RgManager "is responsible for governing the node's
resources and mitigating potential noisy neighbor performance issues";
§5.5: "We will also be exploring how to use Toto to measure
RgManager's effectiveness at mitigating potential performance issues."

This module implements that future-work evaluation hook. The governor
watches the *modeled* CPU usage of every replica on its node (the
advisory ``cpu-used-cores`` metric produced by
:class:`repro.core.cpu_model.CpuUsageModel`) and, when the node's total
usage exceeds a limit, throttles the heaviest consumers down to the
limit while protecting every tenant's fair share — the classic
work-conserving noisy-neighbor policy. Toto then measures
effectiveness as the reduction in node-over-limit exposure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import SqlDbError


@dataclass
class GovernanceStats:
    """Counters the effectiveness evaluation reads."""

    observations: int = 0
    over_limit_observations: int = 0
    throttle_events: int = 0
    throttled_core_seconds: float = 0.0

    @property
    def over_limit_fraction(self) -> float:
        """Share of observations where raw demand exceeded the limit."""
        if self.observations == 0:
            return 0.0
        return self.over_limit_observations / self.observations


class CpuGovernor:
    """Per-node CPU usage governor.

    Args:
        cpu_capacity_cores: the node's *physical* core count (the
            governor protects hardware, so the density knob does not
            scale it).
        limit_fraction: usable fraction of the node's cores; demand
            beyond it is throttled.
        fair_share_cores: per-replica floor no throttle may cut below —
            every tenant keeps its minimum performance (§3.1: "ensure
            that all customer's resource requirements are met").
        enforce: when False, the governor runs in monitor-only mode —
            it records over-limit exposure but never throttles. This is
            the baseline arm of the §5.5 effectiveness evaluation.
    """

    def __init__(self, cpu_capacity_cores: float,
                 limit_fraction: float = 0.9,
                 fair_share_cores: float = 0.25,
                 enforce: bool = True) -> None:
        if cpu_capacity_cores <= 0:
            raise SqlDbError("cpu_capacity_cores must be positive")
        if not 0.0 < limit_fraction <= 1.0:
            raise SqlDbError(
                f"limit_fraction must be in (0, 1], got {limit_fraction}")
        if fair_share_cores < 0:
            raise SqlDbError("fair_share_cores must be >= 0")
        self.cpu_capacity_cores = cpu_capacity_cores
        self.limit_fraction = limit_fraction
        self.fair_share_cores = fair_share_cores
        self.enforce = enforce
        self.stats = GovernanceStats()

    @property
    def limit_cores(self) -> float:
        return self.limit_fraction * self.cpu_capacity_cores

    def govern(self, usage_by_replica: Dict[int, float],
               interval_seconds: int) -> Dict[int, float]:
        """Return the governed per-replica usage for one interval.

        Largest consumers are throttled first (water-filling down to
        the limit); no replica is cut below ``fair_share_cores`` unless
        its raw demand was already lower.
        """
        self.stats.observations += 1
        total = sum(usage_by_replica.values())
        limit = self.limit_cores
        if total <= limit:
            return dict(usage_by_replica)

        self.stats.over_limit_observations += 1
        if not self.enforce:
            return dict(usage_by_replica)
        governed = dict(usage_by_replica)
        excess = total - limit
        # Throttle heaviest consumers first.
        order = sorted(governed, key=lambda rid: -governed[rid])
        for replica_id in order:
            if excess <= 1e-12:
                break
            raw = governed[replica_id]
            floor = min(self.fair_share_cores, raw)
            cut = min(raw - floor, excess)
            if cut <= 0:
                continue
            governed[replica_id] = raw - cut
            excess -= cut
            self.stats.throttle_events += 1
            self.stats.throttled_core_seconds += cut * interval_seconds
        return governed


@dataclass(frozen=True)
class GovernanceReport:
    """Effectiveness summary across a ring's nodes."""

    nodes: int
    observations: int
    raw_over_limit_fraction: float
    throttle_events: int
    throttled_core_hours: float

    def row(self) -> str:
        return (f"nodes={self.nodes}  obs={self.observations}  "
                f"raw-over-limit={self.raw_over_limit_fraction:.1%}  "
                f"throttles={self.throttle_events}  "
                f"throttled={self.throttled_core_hours:.1f} core-h")


def summarize_governors(governors) -> GovernanceReport:
    """Aggregate effectiveness stats over many nodes' governors."""
    governors = list(governors)
    observations = sum(g.stats.observations for g in governors)
    over = sum(g.stats.over_limit_observations for g in governors)
    return GovernanceReport(
        nodes=len(governors),
        observations=observations,
        raw_over_limit_fraction=over / observations if observations else 0.0,
        throttle_events=sum(g.stats.throttle_events for g in governors),
        throttled_core_hours=sum(g.stats.throttled_core_seconds
                                 for g in governors) / 3600.0,
    )
