"""Elastic Pools — the paper's §5.5 future-work population extension.

"For our experiments the population of databases was restricted to SQL
DB singletons, but other offerings such as Elastic Pools (which allow
for multi-tenancy inside a single SQL DB instance) will add to
environment accuracy."

An elastic pool purchases one SLO's worth of resources and hosts many
member databases inside it. From the orchestrator's point of view a
pool is a single service (one reservation, one disk footprint); from
the customer's point of view it holds N databases whose data all lands
on the pool's replicas. That is exactly how we model it:

* the pool itself is a :class:`DatabaseInstance` created through the
  normal control-plane path (so placement, Toto's disk models, failover
  downtime, and revenue all apply unchanged);
* members are tracked by the :class:`ElasticPoolManager`, and adding or
  removing a member adjusts the pool's billed data size and — for
  local-store pools — its persisted disk load in the Naming Service, so
  the next metric report reflects the membership change immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SqlDbError
from repro.fabric.metrics import DISK_GB
from repro.sqldb.control_plane import ControlPlane
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.rgmanager import persisted_load_key


@dataclass
class PoolMember:
    """One customer database living inside a pool."""

    name: str
    data_gb: float
    added_at: int
    removed_at: Optional[int] = None

    @property
    def is_active(self) -> bool:
        return self.removed_at is None


@dataclass
class ElasticPool:
    """A pool: the hosting database plus its member registry."""

    database: DatabaseInstance
    members: List[PoolMember] = field(default_factory=list)

    @property
    def pool_id(self) -> str:
        return self.database.db_id

    @property
    def active_members(self) -> List[PoolMember]:
        return [member for member in self.members if member.is_active]

    @property
    def member_data_gb(self) -> float:
        return sum(member.data_gb for member in self.active_members)

    def member(self, name: str) -> PoolMember:
        for candidate in self.members:
            if candidate.name == name and candidate.is_active:
                return candidate
        raise SqlDbError(f"pool {self.pool_id} has no active member "
                         f"'{name}'")


class ElasticPoolManager:
    """Creates pools and manages their membership on one ring."""

    #: Fixed per-pool overhead (system databases, tempdb, metadata).
    POOL_OVERHEAD_GB = 4.0

    def __init__(self, control_plane: ControlPlane) -> None:
        self._control_plane = control_plane
        self._pools: Dict[str, ElasticPool] = {}

    # ------------------------------------------------------------------

    def pools(self) -> List[ElasticPool]:
        return list(self._pools.values())

    def pool(self, pool_id: str) -> ElasticPool:
        pool = self._pools.get(pool_id)
        if pool is None:
            raise SqlDbError(f"unknown pool '{pool_id}'")
        return pool

    def create_pool(self, slo_name: str, now: int) -> ElasticPool:
        """Provision an empty pool with the given SLO.

        Raises :class:`repro.errors.AdmissionRejected` exactly like a
        singleton create when the ring lacks capacity.
        """
        database = self._control_plane.create_database(
            slo_name=slo_name, now=now,
            initial_data_gb=self.POOL_OVERHEAD_GB)
        pool = ElasticPool(database=database)
        self._pools[pool.pool_id] = pool
        return pool

    def drop_pool(self, pool_id: str, now: int) -> ElasticPool:
        """Drop a pool and everything inside it."""
        pool = self.pool(pool_id)
        for member in pool.active_members:
            member.removed_at = now
        self._control_plane.drop_database(pool_id, now)
        del self._pools[pool_id]
        return pool

    # ------------------------------------------------------------------

    def add_member(self, pool_id: str, name: str, data_gb: float,
                   now: int) -> PoolMember:
        """Create a database inside the pool."""
        if data_gb < 0:
            raise SqlDbError(f"member '{name}' has negative size")
        pool = self.pool(pool_id)
        if not pool.database.is_active:
            raise SqlDbError(f"pool {pool_id} is dropped")
        if any(member.name == name for member in pool.active_members):
            raise SqlDbError(f"pool {pool_id} already has member '{name}'")
        headroom = pool.database.slo.max_data_gb \
            - pool.member_data_gb - self.POOL_OVERHEAD_GB
        if data_gb > headroom:
            raise SqlDbError(
                f"pool {pool_id} has {headroom:.0f} GB headroom, member "
                f"'{name}' needs {data_gb:.0f}")
        member = PoolMember(name=name, data_gb=data_gb, added_at=now)
        pool.members.append(member)
        self._apply_disk_delta(pool, +data_gb)
        return member

    def remove_member(self, pool_id: str, name: str, now: int) -> PoolMember:
        """Drop one member database from the pool."""
        pool = self.pool(pool_id)
        member = pool.member(name)
        member.removed_at = now
        self._apply_disk_delta(pool, -member.data_gb)
        return member

    def move_member(self, source_pool_id: str, target_pool_id: str,
                    name: str, now: int) -> PoolMember:
        """Move a member between pools (a common rebalancing action)."""
        member = self.pool(source_pool_id).member(name)
        self.remove_member(source_pool_id, name, now)
        return self.add_member(target_pool_id, name, member.data_gb, now)

    # ------------------------------------------------------------------

    def _apply_disk_delta(self, pool: ElasticPool, delta_gb: float) -> None:
        """Reflect a membership change in the pool's disk footprint.

        The billed data size always moves; for local-store pools the
        persisted load in the Naming Service moves too, so the very
        next metric report (primary executes the model on the stored
        value, §3.3.2) carries the change to the PLB.
        """
        database = pool.database
        database.initial_data_gb = max(
            database.initial_data_gb + delta_gb, 0.0)
        if not database.is_local_store:
            return
        naming = self._control_plane.cluster.naming
        key = persisted_load_key(database.db_id, DISK_GB)
        current = naming.get_or_default(key)
        if current is not None:
            naming.put(key, max(float(current) + delta_gb, 0.0))
