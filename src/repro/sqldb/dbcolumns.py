"""Columnar (struct-of-arrays) storage for database lifecycle state.

The control-plane half of the fleet-scale refactor (ROADMAP item 1,
see :mod:`repro.fabric.colstore` for the replica half and the shared
byte-identity contract). Every :class:`~repro.sqldb.database.DatabaseInstance`
the control plane creates stores its numeric/flag lifecycle state —
timestamps, downtime, growth parameters — as one row across the numpy
columns of a shared :class:`DatabaseStateColumns`, instead of as eight
Python attribute slots with boxed values per database. A million-row
store costs ~50 MB of columns; a million dataclass instances cost an
order of magnitude more.

The object-graph path (:class:`ObjectDatabaseState`) remains both the
backing for standalone, test-constructed instances and the A/B
fallback selected by ``TOTO_OBJECT_STATE=1`` /
:data:`repro.fabric.colstore.COLUMNAR_STATE`. Both backings expose the
same scalar accessor surface and return only built-in Python scalars,
so every derived number — KPIs, revenue, pickled results — is
bit-identical between the two (pinned by tests/test_fleet_scale.py).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fabric import colstore

#: ``dropped_at`` sentinel for "still active" (timestamps are >= 0).
_NEVER = -1

_FLAG_HIGH_INITIAL_GROWTH = 1
_FLAG_RAPID_GROWTH = 2
_FLAG_FROM_BOOTSTRAP = 4


def columnar_enabled() -> bool:
    """Single switch for both columnar stores (fabric + sqldb)."""
    return colstore.columnar_enabled()


class DatabaseStateColumns:
    """Shared struct-of-arrays backing for database lifecycle state.

    Rows are append-only: the control plane keeps every database ever
    created (dropped ones feed the revenue/SLA accounting), so rows are
    never recycled and ``allocate`` is a bump pointer with amortized
    doubling growth.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            capacity = 1
        self._created_at = np.zeros(capacity, dtype=np.int64)
        self._dropped_at = np.full(capacity, _NEVER, dtype=np.int64)
        self._downtime_seconds = np.zeros(capacity, dtype=np.float64)
        self._failover_count = np.zeros(capacity, dtype=np.int64)
        self._initial_data_gb = np.zeros(capacity, dtype=np.float64)
        self._growth_total_gb = np.zeros(capacity, dtype=np.float64)
        self._flags = np.zeros(capacity, dtype=np.uint8)
        self._rows = 0

    # -- bookkeeping ---------------------------------------------------

    @property
    def capacity(self) -> int:
        return int(self._created_at.shape[0])

    @property
    def rows(self) -> int:
        return self._rows

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2

        def grown(array: np.ndarray, fill: object = 0) -> np.ndarray:
            out = np.full(new, fill, dtype=array.dtype)
            out[:old] = array
            return out

        self._created_at = grown(self._created_at)
        self._dropped_at = grown(self._dropped_at, _NEVER)
        self._downtime_seconds = grown(self._downtime_seconds)
        self._failover_count = grown(self._failover_count)
        self._initial_data_gb = grown(self._initial_data_gb)
        self._growth_total_gb = grown(self._growth_total_gb)
        self._flags = grown(self._flags)

    def allocate(self) -> int:
        if self._rows >= self.capacity:
            self._grow()
        row = self._rows
        self._rows += 1
        return row

    def init_row(self, row: int, created_at: int, initial_data_gb: float,
                 dropped_at: Optional[int], downtime_seconds: float,
                 failover_count: int, high_initial_growth: bool,
                 initial_growth_total_gb: float, rapid_growth: bool,
                 from_bootstrap: bool) -> None:
        self._created_at[row] = created_at
        self._dropped_at[row] = _NEVER if dropped_at is None else dropped_at
        self._downtime_seconds[row] = downtime_seconds
        self._failover_count[row] = failover_count
        self._initial_data_gb[row] = initial_data_gb
        self._growth_total_gb[row] = initial_growth_total_gb
        flags = 0
        if high_initial_growth:
            flags |= _FLAG_HIGH_INITIAL_GROWTH
        if rapid_growth:
            flags |= _FLAG_RAPID_GROWTH
        if from_bootstrap:
            flags |= _FLAG_FROM_BOOTSTRAP
        self._flags[row] = flags

    # -- scalar accessors (reads return built-in Python scalars) -------

    def created_at(self, row: int) -> int:
        return int(self._created_at[row])

    def set_created_at(self, row: int, value: int) -> None:
        self._created_at[row] = value

    def dropped_at(self, row: int) -> Optional[int]:
        value = int(self._dropped_at[row])
        return None if value == _NEVER else value

    def set_dropped_at(self, row: int, value: Optional[int]) -> None:
        self._dropped_at[row] = _NEVER if value is None else value

    def downtime_seconds(self, row: int) -> float:
        return float(self._downtime_seconds[row])

    def set_downtime_seconds(self, row: int, value: float) -> None:
        self._downtime_seconds[row] = value

    def failover_count(self, row: int) -> int:
        return int(self._failover_count[row])

    def set_failover_count(self, row: int, value: int) -> None:
        self._failover_count[row] = value

    def initial_data_gb(self, row: int) -> float:
        return float(self._initial_data_gb[row])

    def set_initial_data_gb(self, row: int, value: float) -> None:
        self._initial_data_gb[row] = value

    def initial_growth_total_gb(self, row: int) -> float:
        return float(self._growth_total_gb[row])

    def set_initial_growth_total_gb(self, row: int, value: float) -> None:
        self._growth_total_gb[row] = value

    def _flag(self, row: int, mask: int) -> bool:
        return bool(self._flags[row] & mask)

    def _set_flag(self, row: int, mask: int, value: bool) -> None:
        if value:
            self._flags[row] |= mask
        else:
            self._flags[row] &= ~mask & 0xFF

    def high_initial_growth(self, row: int) -> bool:
        return self._flag(row, _FLAG_HIGH_INITIAL_GROWTH)

    def set_high_initial_growth(self, row: int, value: bool) -> None:
        self._set_flag(row, _FLAG_HIGH_INITIAL_GROWTH, value)

    def rapid_growth(self, row: int) -> bool:
        return self._flag(row, _FLAG_RAPID_GROWTH)

    def set_rapid_growth(self, row: int, value: bool) -> None:
        self._set_flag(row, _FLAG_RAPID_GROWTH, value)

    def from_bootstrap(self, row: int) -> bool:
        return self._flag(row, _FLAG_FROM_BOOTSTRAP)

    def set_from_bootstrap(self, row: int, value: bool) -> None:
        self._set_flag(row, _FLAG_FROM_BOOTSTRAP, value)

    # -- vectorized aggregate views ------------------------------------

    def active_count(self) -> int:
        """Databases never dropped (one vectorized scan, no object walk)."""
        return int(np.count_nonzero(
            self._dropped_at[:self._rows] == _NEVER))

    def total_failovers(self) -> int:
        return int(self._failover_count[:self._rows].sum())


class ObjectDatabaseState:
    """The object-graph backing: plain Python attributes, one per field.

    Used for standalone (test-constructed and unpickled) instances and
    for every instance when ``TOTO_OBJECT_STATE`` selects the fallback
    path. Interface-compatible with :class:`DatabaseStateColumns`; the
    ``row`` argument is ignored.
    """

    __slots__ = ("_created_at", "_dropped_at", "_downtime_seconds",
                 "_failover_count", "_initial_data_gb", "_growth_total_gb",
                 "_high_initial_growth", "_rapid_growth", "_from_bootstrap")

    def allocate(self) -> int:
        return 0

    def init_row(self, row: int, created_at: int, initial_data_gb: float,
                 dropped_at: Optional[int], downtime_seconds: float,
                 failover_count: int, high_initial_growth: bool,
                 initial_growth_total_gb: float, rapid_growth: bool,
                 from_bootstrap: bool) -> None:
        self._created_at = created_at
        self._dropped_at = dropped_at
        self._downtime_seconds = downtime_seconds
        self._failover_count = failover_count
        self._initial_data_gb = initial_data_gb
        self._growth_total_gb = initial_growth_total_gb
        self._high_initial_growth = high_initial_growth
        self._rapid_growth = rapid_growth
        self._from_bootstrap = from_bootstrap

    def created_at(self, row: int) -> int:
        return self._created_at

    def set_created_at(self, row: int, value: int) -> None:
        self._created_at = value

    def dropped_at(self, row: int) -> Optional[int]:
        return self._dropped_at

    def set_dropped_at(self, row: int, value: Optional[int]) -> None:
        self._dropped_at = value

    def downtime_seconds(self, row: int) -> float:
        return self._downtime_seconds

    def set_downtime_seconds(self, row: int, value: float) -> None:
        self._downtime_seconds = value

    def failover_count(self, row: int) -> int:
        return self._failover_count

    def set_failover_count(self, row: int, value: int) -> None:
        self._failover_count = value

    def initial_data_gb(self, row: int) -> float:
        return self._initial_data_gb

    def set_initial_data_gb(self, row: int, value: float) -> None:
        self._initial_data_gb = value

    def initial_growth_total_gb(self, row: int) -> float:
        return self._growth_total_gb

    def set_initial_growth_total_gb(self, row: int, value: float) -> None:
        self._growth_total_gb = value

    def high_initial_growth(self, row: int) -> bool:
        return self._high_initial_growth

    def set_high_initial_growth(self, row: int, value: bool) -> None:
        self._high_initial_growth = value

    def rapid_growth(self, row: int) -> bool:
        return self._rapid_growth

    def set_rapid_growth(self, row: int, value: bool) -> None:
        self._rapid_growth = value

    def from_bootstrap(self, row: int) -> bool:
        return self._from_bootstrap

    def set_from_bootstrap(self, row: int, value: bool) -> None:
        self._from_bootstrap = value
