"""Initial-population synthesis (paper §5.2, Table 2).

"At the beginning of each experiment, we bootstrapped the cluster to
contain an initial population of databases. Using the production
telemetry, we generated an initial population that had a
representative mix of Premium/BC databases vs Standard/GP databases, a
representative mix of SLOs within each service tier, and a
representative mix of initial disk usage loads."

:class:`PopulationMix` captures the demographic knobs;
:func:`generate_initial_population` turns them into a deterministic,
seed-fixed creation order. Targets (total reserved cores, total disk)
are hit by rejection-free scaling: sizes are drawn from the mix and
then the disk draws are scaled so the bootstrap lands at the requested
disk-utilization level (77% in the paper's Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ScenarioError
from repro.sqldb.editions import Edition, GP_TEMPDB_BASELINE_GB
from repro.sqldb.slo import get_slo


@dataclass(frozen=True)
class CreationOrder:
    """One database the bootstrap (or a test) should create."""

    slo_name: str
    initial_data_gb: float
    rapid_growth: bool = False

    @property
    def edition(self) -> Edition:
        return get_slo(self.slo_name).edition

    @property
    def reserved_cores(self) -> int:
        return get_slo(self.slo_name).total_reserved_cores


@dataclass(frozen=True)
class PopulationMix:
    """Demographic mix used for both bootstrap and churn.

    The default weights skew to small SLOs, matching the paper's
    observation that most cloud databases are small and lightly
    utilized (§2), with BC mixes slightly larger than GP.
    """

    gp_slo_weights: Tuple[Tuple[str, float], ...] = (
        ("GP_Gen5_2", 0.52), ("GP_Gen5_4", 0.28), ("GP_Gen5_6", 0.10),
        ("GP_Gen5_8", 0.06), ("GP_Gen5_16", 0.03), ("GP_Gen5_24", 0.007),
        ("GP_Gen5_32", 0.003),
    )
    bc_slo_weights: Tuple[Tuple[str, float], ...] = (
        ("BC_Gen5_2", 0.38), ("BC_Gen5_4", 0.30), ("BC_Gen5_6", 0.14),
        ("BC_Gen5_8", 0.10), ("BC_Gen5_16", 0.05), ("BC_Gen5_24", 0.02),
        ("BC_Gen5_32", 0.01),
    )
    #: log-space parameters of initial data size per edition.
    gp_data_mu: float = 3.0
    gp_data_sigma: float = 1.2
    bc_data_mu: float = 5.2
    bc_data_sigma: float = 0.9
    data_cap_gb: float = 2048.0
    #: Fraction of databases following the Predictable Rapid Growth
    #: pattern (§4.2.4's "subset of databases").
    rapid_growth_fraction: float = 0.02

    def slo_weights(self, edition: Edition) -> Tuple[Tuple[str, float], ...]:
        if edition is Edition.STANDARD_GP:
            return self.gp_slo_weights
        return self.bc_slo_weights

    def sample_slo(self, edition: Edition, rng: np.random.Generator) -> str:
        weights = self.slo_weights(edition)
        names = [name for name, _ in weights]
        raw = np.array([w for _, w in weights], dtype=float)
        return str(names[int(rng.choice(len(names), p=raw / raw.sum()))])

    def sample_data_gb(self, edition: Edition,
                       rng: np.random.Generator) -> float:
        if edition is Edition.STANDARD_GP:
            mu, sigma = self.gp_data_mu, self.gp_data_sigma
        else:
            mu, sigma = self.bc_data_mu, self.bc_data_sigma
        value = float(rng.lognormal(mu, sigma))
        return float(min(max(value, 0.1), self.data_cap_gb))


@dataclass(frozen=True)
class InitialPopulationSpec:
    """The paper's Table 2 plus resource-utilization targets (Table 3)."""

    gp_count: int = 187
    bc_count: int = 33
    mix: PopulationMix = field(default_factory=PopulationMix)
    #: Target fraction of the 100%-density core budget reserved by the
    #: bootstrap population (Table 3 derives free cores from this).
    target_core_fraction: float = 0.94
    #: Target fraction of cluster disk consumed by the bootstrap
    #: population ("the disk utilization began at 77%", §5.4).
    target_disk_fraction: float = 0.77

    @property
    def total_count(self) -> int:
        return self.gp_count + self.bc_count


def generate_initial_population(
        spec: InitialPopulationSpec,
        cluster_cores_at_100pct: float,
        cluster_disk_gb: float,
        rng: np.random.Generator) -> List[CreationOrder]:
    """Produce the deterministic bootstrap creation order.

    The SLO mix is sampled first; the sampled set is then nudged toward
    the ``target_core_fraction`` by re-rolling the largest/smallest
    entries, and disk draws are scaled so the population's total local
    disk hits ``target_disk_fraction`` of the cluster. The result is a
    list ordered GP-before-BC-interleaved exactly as sampled, so a
    fixed seed yields a fixed population.
    """
    if spec.total_count <= 0:
        raise ScenarioError("initial population must be non-empty")

    # Interleave editions deterministically: spread BC creates evenly
    # through the order (so placement sees a realistic mix).
    editions: List[Edition] = []
    bc_spacing = max(spec.total_count // max(spec.bc_count, 1), 1)
    bc_remaining = spec.bc_count
    for index in range(spec.total_count):
        if bc_remaining > 0 and index % bc_spacing == bc_spacing - 1:
            editions.append(Edition.PREMIUM_BC)
            bc_remaining -= 1
        else:
            editions.append(Edition.STANDARD_GP)
    # Fill any shortfall (rounding) with BC at the tail.
    for index in range(len(editions) - 1, -1, -1):
        if bc_remaining == 0:
            break
        if editions[index] is Edition.STANDARD_GP:
            editions[index] = Edition.PREMIUM_BC
            bc_remaining -= 1

    slo_names = [spec.mix.sample_slo(edition, rng) for edition in editions]
    data_sizes = [spec.mix.sample_data_gb(edition, rng)
                  for edition in editions]
    rapid_flags = [bool(rng.random() < spec.mix.rapid_growth_fraction)
                   for _ in editions]

    _retune_cores(slo_names, editions, spec, cluster_cores_at_100pct, rng)
    _rescale_disk(data_sizes, slo_names, spec, cluster_disk_gb)

    orders = [CreationOrder(slo_name=slo_names[i],
                            initial_data_gb=data_sizes[i],
                            rapid_growth=rapid_flags[i])
              for i in range(spec.total_count)]
    # Largest reservations first: a dense bootstrap (94% of the core
    # budget) only packs if big replicas land while nodes still have
    # contiguous headroom. Stable sort keeps determinism.
    orders.sort(key=lambda order: -order.reserved_cores)
    return orders


def _retune_cores(slo_names: List[str], editions: List[Edition],
                  spec: InitialPopulationSpec, budget_cores: float,
                  rng: np.random.Generator) -> None:
    """Nudge the sampled SLO mix toward the target core reservation.

    Re-rolls random entries to one-step-larger or one-step-smaller SLOs
    until the total reserved cores is within one node-worth of the
    target (or no further progress is possible).
    """
    from repro.sqldb.slo import CORE_SIZES, slo_name as make_name

    target = spec.target_core_fraction * budget_cores
    # Reserved cores are integers, so the running total is exactly the
    # recomputed sum — same exit iteration, same rng draws — while a
    # 10k-database bootstrap drops from O(n^2) to O(n) SLO lookups.
    total = sum(get_slo(name).total_reserved_cores for name in slo_names)
    for _ in range(10 * len(slo_names)):
        error = target - total
        if abs(error) <= 8:
            return
        index = int(rng.integers(len(slo_names)))
        slo = get_slo(slo_names[index])
        position = CORE_SIZES.index(slo.cores)
        if error > 0 and position + 1 < len(CORE_SIZES):
            new_name = make_name(editions[index], CORE_SIZES[position + 1])
        elif error < 0 and position > 0:
            new_name = make_name(editions[index], CORE_SIZES[position - 1])
        else:
            continue
        total += (get_slo(new_name).total_reserved_cores
                  - slo.total_reserved_cores)
        slo_names[index] = new_name


def _rescale_disk(data_sizes: List[float], slo_names: List[str],
                  spec: InitialPopulationSpec,
                  cluster_disk_gb: float) -> None:
    """Scale data draws so total *local* disk hits the target fraction.

    Local disk counts each BC replica separately and only tempdb for
    GP, matching how the PLB sees the cluster (§2).
    """
    target_gb = spec.target_disk_fraction * cluster_disk_gb
    fixed = 0.0     # GP tempdb is a constant footprint
    scalable = 0.0  # BC data scales with the draws
    for name, size in zip(slo_names, data_sizes):
        slo = get_slo(name)
        if slo.edition is Edition.STANDARD_GP:
            fixed += GP_TEMPDB_BASELINE_GB
        else:
            scalable += size * slo.replica_count
    if scalable <= 0:
        return
    factor = max((target_gb - fixed) / scalable, 0.01)
    for index, name in enumerate(slo_names):
        if get_slo(name).edition is Edition.PREMIUM_BC:
            data_sizes[index] = float(
                min(data_sizes[index] * factor, spec.mix.data_cap_gb))


def population_summary(orders: List[CreationOrder]) -> Dict[str, float]:
    """Aggregate view of a creation order list (used by Table 2/3)."""
    gp = [o for o in orders if o.edition is Edition.STANDARD_GP]
    bc = [o for o in orders if o.edition is Edition.PREMIUM_BC]
    total_cores = sum(o.reserved_cores for o in orders)
    local_disk = sum(
        o.initial_data_gb * get_slo(o.slo_name).replica_count
        if o.edition is Edition.PREMIUM_BC else GP_TEMPDB_BASELINE_GB
        for o in orders)
    return {
        "gp_count": len(gp),
        "bc_count": len(bc),
        "total_count": len(orders),
        "reserved_cores": float(total_cores),
        "local_disk_gb": float(local_disk),
    }
