"""Database instances and their lifecycle state.

A :class:`DatabaseInstance` is the control-plane view of one customer
database: its SLO, creation/drop timestamps, accumulated downtime (for
the SLA penalty in §5.1), and the behaviour flags Toto's disk models
key on (high initial growth, predictable rapid growth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SqlDbError
from repro.sqldb.editions import Edition, GP_TEMPDB_BASELINE_GB
from repro.sqldb.slo import ServiceLevelObjective


@dataclass
class DatabaseInstance:
    """One customer database hosted (or once hosted) in the ring.

    Attributes:
        db_id: unique id, stable across failovers.
        slo: purchased configuration.
        created_at: simulation timestamp of creation.
        dropped_at: timestamp of drop, ``None`` while active.
        initial_data_gb: data size at creation (restored mdf, bulk
            load, or a small fresh database).
        downtime_seconds: accumulated customer-visible unavailability;
            feeds the SLA credit calculation.
        high_initial_growth: Toto's Initial Creation Growth pattern is
            active for the first 30 minutes (§4.2.3).
        initial_growth_total_gb: total growth the pattern will deliver.
        rapid_growth: the Predictable Rapid Growth state machine governs
            this database (§4.2.4).
        from_bootstrap: True for databases placed before the benchmark
            officially starts (growth frozen during bootstrap, §5.2).
    """

    db_id: str
    slo: ServiceLevelObjective
    created_at: int
    initial_data_gb: float
    dropped_at: Optional[int] = None
    downtime_seconds: float = 0.0
    high_initial_growth: bool = False
    initial_growth_total_gb: float = 0.0
    rapid_growth: bool = False
    from_bootstrap: bool = False
    failover_count: int = 0
    #: Replica ids released at drop time (lets per-node caches clean up).
    dropped_replica_ids: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.initial_data_gb < 0:
            raise SqlDbError(
                f"{self.db_id}: negative initial data size "
                f"{self.initial_data_gb}")

    @property
    def edition(self) -> Edition:
        return self.slo.edition

    @property
    def is_active(self) -> bool:
        return self.dropped_at is None

    @property
    def is_local_store(self) -> bool:
        return self.edition.is_local_store

    def lifetime_seconds(self, now: int) -> int:
        """Seconds the database has existed (up to drop time)."""
        end = self.dropped_at if self.dropped_at is not None else now
        if end < self.created_at:
            raise SqlDbError(
                f"{self.db_id}: lifetime query at {now} before creation "
                f"{self.created_at}")
        return end - self.created_at

    def downtime_fraction(self, now: int) -> float:
        """Downtime as a fraction of lifetime (0 for zero lifetime)."""
        lifetime = self.lifetime_seconds(now)
        if lifetime <= 0:
            return 0.0
        return self.downtime_seconds / lifetime

    def initial_local_disk_gb(self) -> float:
        """Local disk footprint each replica starts with.

        Local-store databases carry their full data on the node;
        remote-store databases only consume the tempdb baseline (§2).
        """
        if self.is_local_store:
            return self.initial_data_gb
        return GP_TEMPDB_BASELINE_GB

    def record_downtime(self, seconds: float) -> None:
        """Accumulate customer-visible unavailability from a failover."""
        if seconds < 0:
            raise SqlDbError(f"{self.db_id}: negative downtime {seconds}")
        self.downtime_seconds += seconds
        self.failover_count += 1

    def mark_dropped(self, now: int) -> None:
        if self.dropped_at is not None:
            raise SqlDbError(f"{self.db_id}: already dropped")
        if now < self.created_at:
            raise SqlDbError(
                f"{self.db_id}: drop at {now} before creation {self.created_at}")
        self.dropped_at = now
