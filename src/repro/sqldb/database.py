"""Database instances and their lifecycle state.

A :class:`DatabaseInstance` is the control-plane view of one customer
database: its SLO, creation/drop timestamps, accumulated downtime (for
the SLA penalty in §5.1), and the behaviour flags Toto's disk models
key on (high initial growth, predictable rapid growth).

Since the fleet-scale refactor (ROADMAP item 1) the numeric/flag
lifecycle state no longer lives in per-instance attributes: each
instance is a thin handle onto one row of a
:class:`~repro.sqldb.dbcolumns.DatabaseStateColumns` struct-of-arrays
store shared by its control plane. Standalone instances (tests,
unpickles) get a private :class:`~repro.sqldb.dbcolumns.ObjectDatabaseState`
backing with identical semantics. The public attribute surface —
``created_at``, ``dropped_at``, ``downtime_seconds`` etc., all
readable and writable — is unchanged from the old dataclass.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import SqlDbError
from repro.sqldb.dbcolumns import DatabaseStateColumns, ObjectDatabaseState
from repro.sqldb.editions import Edition, GP_TEMPDB_BASELINE_GB
from repro.sqldb.slo import ServiceLevelObjective

#: Lifecycle fields in the (former dataclass) field order — the order
#: used by ``__repr__``, ``__eq__`` and the pickle payload, so pickles
#: and reprs are byte-identical to the pre-columnar implementation.
_STATE_FIELDS: Tuple[str, ...] = (
    "created_at", "initial_data_gb", "dropped_at", "downtime_seconds",
    "high_initial_growth", "initial_growth_total_gb", "rapid_growth",
    "from_bootstrap", "failover_count",
)


class DatabaseInstance:
    """One customer database hosted (or once hosted) in the ring.

    Attributes:
        db_id: unique id, stable across failovers.
        slo: purchased configuration.
        created_at: simulation timestamp of creation.
        dropped_at: timestamp of drop, ``None`` while active.
        initial_data_gb: data size at creation (restored mdf, bulk
            load, or a small fresh database).
        downtime_seconds: accumulated customer-visible unavailability;
            feeds the SLA credit calculation.
        high_initial_growth: Toto's Initial Creation Growth pattern is
            active for the first 30 minutes (§4.2.3).
        initial_growth_total_gb: total growth the pattern will deliver.
        rapid_growth: the Predictable Rapid Growth state machine governs
            this database (§4.2.4).
        from_bootstrap: True for databases placed before the benchmark
            officially starts (growth frozen during bootstrap, §5.2).
    """

    __slots__ = ("db_id", "slo", "dropped_replica_ids", "_state", "_row")

    def __init__(self, db_id: str, slo: ServiceLevelObjective,
                 created_at: int, initial_data_gb: float,
                 dropped_at: Optional[int] = None,
                 downtime_seconds: float = 0.0,
                 high_initial_growth: bool = False,
                 initial_growth_total_gb: float = 0.0,
                 rapid_growth: bool = False,
                 from_bootstrap: bool = False,
                 failover_count: int = 0,
                 dropped_replica_ids: Optional[List[int]] = None,
                 state: Optional[DatabaseStateColumns] = None) -> None:
        if initial_data_gb < 0:
            raise SqlDbError(
                f"{db_id}: negative initial data size "
                f"{initial_data_gb}")
        self.db_id = db_id
        self.slo = slo
        #: Replica ids released at drop time (per-node cache cleanup).
        self.dropped_replica_ids: List[int] = (
            [] if dropped_replica_ids is None else dropped_replica_ids)
        backing: Union[DatabaseStateColumns, ObjectDatabaseState]
        backing = ObjectDatabaseState() if state is None else state
        self._state = backing
        self._row = backing.allocate()
        backing.init_row(
            self._row, created_at, initial_data_gb, dropped_at,
            downtime_seconds, failover_count, high_initial_growth,
            initial_growth_total_gb, rapid_growth, from_bootstrap)

    # -- lifecycle state, delegated to the columnar/object backing -----

    @property
    def created_at(self) -> int:
        return self._state.created_at(self._row)

    @created_at.setter
    def created_at(self, value: int) -> None:
        self._state.set_created_at(self._row, value)

    @property
    def dropped_at(self) -> Optional[int]:
        return self._state.dropped_at(self._row)

    @dropped_at.setter
    def dropped_at(self, value: Optional[int]) -> None:
        self._state.set_dropped_at(self._row, value)

    @property
    def downtime_seconds(self) -> float:
        return self._state.downtime_seconds(self._row)

    @downtime_seconds.setter
    def downtime_seconds(self, value: float) -> None:
        self._state.set_downtime_seconds(self._row, value)

    @property
    def failover_count(self) -> int:
        return self._state.failover_count(self._row)

    @failover_count.setter
    def failover_count(self, value: int) -> None:
        self._state.set_failover_count(self._row, value)

    @property
    def initial_data_gb(self) -> float:
        return self._state.initial_data_gb(self._row)

    @initial_data_gb.setter
    def initial_data_gb(self, value: float) -> None:
        self._state.set_initial_data_gb(self._row, value)

    @property
    def initial_growth_total_gb(self) -> float:
        return self._state.initial_growth_total_gb(self._row)

    @initial_growth_total_gb.setter
    def initial_growth_total_gb(self, value: float) -> None:
        self._state.set_initial_growth_total_gb(self._row, value)

    @property
    def high_initial_growth(self) -> bool:
        return self._state.high_initial_growth(self._row)

    @high_initial_growth.setter
    def high_initial_growth(self, value: bool) -> None:
        self._state.set_high_initial_growth(self._row, value)

    @property
    def rapid_growth(self) -> bool:
        return self._state.rapid_growth(self._row)

    @rapid_growth.setter
    def rapid_growth(self, value: bool) -> None:
        self._state.set_rapid_growth(self._row, value)

    @property
    def from_bootstrap(self) -> bool:
        return self._state.from_bootstrap(self._row)

    @from_bootstrap.setter
    def from_bootstrap(self, value: bool) -> None:
        self._state.set_from_bootstrap(self._row, value)

    # -- dataclass-compatible protocol ---------------------------------

    def _field_tuple(self) -> Tuple[Any, ...]:
        values = [self.db_id, self.slo]
        for name in _STATE_FIELDS:
            values.append(getattr(self, name))
        values.append(self.dropped_replica_ids)
        return tuple(values)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not DatabaseInstance:
            return NotImplemented
        return self._field_tuple() == other._field_tuple()

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        parts = [f"db_id={self.db_id!r}", f"slo={self.slo!r}"]
        parts.append(f"created_at={self.created_at!r}")
        parts.append(f"initial_data_gb={self.initial_data_gb!r}")
        parts.append(f"dropped_at={self.dropped_at!r}")
        parts.append(f"downtime_seconds={self.downtime_seconds!r}")
        parts.append(f"high_initial_growth={self.high_initial_growth!r}")
        parts.append(
            f"initial_growth_total_gb={self.initial_growth_total_gb!r}")
        parts.append(f"rapid_growth={self.rapid_growth!r}")
        parts.append(f"from_bootstrap={self.from_bootstrap!r}")
        parts.append(f"failover_count={self.failover_count!r}")
        parts.append(f"dropped_replica_ids={self.dropped_replica_ids!r}")
        return f"DatabaseInstance({', '.join(parts)})"

    def __getstate__(self) -> Dict[str, Any]:
        # Pure-Python scalars in fixed field order: columnar- and
        # object-backed instances pickle to identical bytes.
        state: Dict[str, Any] = {"db_id": self.db_id, "slo": self.slo}
        for name in _STATE_FIELDS:
            state[name] = getattr(self, name)
        state["dropped_replica_ids"] = self.dropped_replica_ids
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.db_id = state["db_id"]
        self.slo = state["slo"]
        self.dropped_replica_ids = state["dropped_replica_ids"]
        backing = ObjectDatabaseState()
        self._state = backing
        self._row = backing.allocate()
        backing.init_row(
            self._row, state["created_at"], state["initial_data_gb"],
            state["dropped_at"], state["downtime_seconds"],
            state["failover_count"], state["high_initial_growth"],
            state["initial_growth_total_gb"], state["rapid_growth"],
            state["from_bootstrap"])

    # -- derived views (unchanged) -------------------------------------

    @property
    def edition(self) -> Edition:
        return self.slo.edition

    @property
    def is_active(self) -> bool:
        return self.dropped_at is None

    @property
    def is_local_store(self) -> bool:
        return self.edition.is_local_store

    def lifetime_seconds(self, now: int) -> int:
        """Seconds the database has existed (up to drop time)."""
        dropped_at = self.dropped_at
        end = dropped_at if dropped_at is not None else now
        created_at = self.created_at
        if end < created_at:
            raise SqlDbError(
                f"{self.db_id}: lifetime query at {now} before creation "
                f"{created_at}")
        return end - created_at

    def downtime_fraction(self, now: int) -> float:
        """Downtime as a fraction of lifetime (0 for zero lifetime)."""
        lifetime = self.lifetime_seconds(now)
        if lifetime <= 0:
            return 0.0
        return self.downtime_seconds / lifetime

    def initial_local_disk_gb(self) -> float:
        """Local disk footprint each replica starts with.

        Local-store databases carry their full data on the node;
        remote-store databases only consume the tempdb baseline (§2).
        """
        if self.is_local_store:
            return self.initial_data_gb
        return GP_TEMPDB_BASELINE_GB

    def record_downtime(self, seconds: float) -> None:
        """Accumulate customer-visible unavailability from a failover."""
        if seconds < 0:
            raise SqlDbError(f"{self.db_id}: negative downtime {seconds}")
        self.downtime_seconds += seconds
        self.failover_count += 1

    def mark_dropped(self, now: int) -> None:
        if self.dropped_at is not None:
            raise SqlDbError(f"{self.db_id}: already dropped")
        if now < self.created_at:
            raise SqlDbError(
                f"{self.db_id}: drop at {now} before creation {self.created_at}")
        self.dropped_at = now
