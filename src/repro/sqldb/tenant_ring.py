"""One tenant ring wired end to end.

A tenant ring (paper §2-3.1) is one Service Fabric cluster hosting
data-plane services. :class:`TenantRing` assembles the cluster, one
RgManager per node, the control plane, the periodic replica-report
sweep, and an optional maintenance-upgrade simulator (the source of
the telemetry outliers the paper notes in Figure 11).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ScenarioError
from repro.fabric.cluster import ServiceFabricCluster
from repro.fabric.failover import FailoverRecord
from repro.fabric.metrics import GEN5_NODE, NodeCapacities
from repro.fabric.replica import Replica
from repro.rng import RngRegistry
from repro.simkernel import PeriodicProcess, SimulationKernel
from repro.sqldb.control_plane import ControlPlane
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.rgmanager import RgManager
from repro.units import DEFAULT_REPORT_INTERVAL, HOUR


def _report_order(replica: Replica) -> Tuple[bool, int]:
    """Report-sweep sort key: primary first, then replica id (§3.3.2).

    Module-level so the per-service sort does not rebuild a closure on
    every sweep iteration (rule TL020).
    """
    return (not replica.is_primary, replica.replica_id)


@dataclass(frozen=True)
class TenantRingConfig:
    """Shape of the stage cluster under benchmark.

    Defaults reproduce the paper's setup: "a smaller 14 node, gen5,
    stage cluster" (§5.2) with the density knob at 100%.
    """

    node_count: int = 14
    base_capacities: NodeCapacities = GEN5_NODE
    density: float = 1.0
    report_interval: int = DEFAULT_REPORT_INTERVAL
    start_weekday: int = 0
    use_annealing: bool = True
    #: Orchestrator backend (:mod:`repro.fabric.backend`): the paper's
    #: ``"annealing"`` PLB or the ``"k8s"`` scheduler.
    backend: str = "annealing"
    #: Mean hours between simulated cluster maintenance upgrades;
    #: 0 disables them.
    maintenance_interval_hours: float = 0.0
    maintenance_duration_hours: float = 1.0
    #: Usable fraction of each node's physical cores for the
    #: noisy-neighbor CPU governor (§3.2); 0 disables governance.
    cpu_governance_limit: float = 0.0

    def __post_init__(self) -> None:
        if self.node_count <= 0:
            raise ScenarioError(f"node_count must be > 0, got {self.node_count}")
        if self.density <= 0:
            raise ScenarioError(f"density must be > 0, got {self.density}")
        if self.report_interval <= 0:
            raise ScenarioError("report_interval must be > 0")

    @property
    def node_capacities(self) -> NodeCapacities:
        """Per-node capacities with the density knob applied to CPU."""
        return self.base_capacities.scaled_cpu(self.density)


class TenantRing:
    """The assembled ring: cluster + RgManagers + control plane + sweeps."""

    def __init__(self, kernel: SimulationKernel, config: TenantRingConfig,
                 rng_registry: RngRegistry,
                 plb_rng_name: str = "plb") -> None:
        self.kernel = kernel
        self.config = config
        self.rng = rng_registry
        self.cluster = ServiceFabricCluster(
            node_count=config.node_count,
            capacities=config.node_capacities,
            plb_rng=rng_registry.stream(plb_rng_name),  # totolint: substream=plb-*
            use_annealing=config.use_annealing,
            downtime_rng=rng_registry.stream("failover", "downtime"),
            backend=config.backend,
        )
        self.control_plane = ControlPlane(self.cluster)
        self.rgmanagers: List[RgManager] = [
            RgManager(node_id=node.node_id, naming=self.cluster.naming,
                      rng_registry=rng_registry,
                      start_weekday=config.start_weekday)
            for node in self.cluster.nodes
        ]
        if config.cpu_governance_limit > 0:
            from repro.sqldb.governance import CpuGovernor
            for rgmanager in self.rgmanagers:
                rgmanager.governor = CpuGovernor(
                    cpu_capacity_cores=config.base_capacities.cpu_cores,
                    limit_fraction=config.cpu_governance_limit)
        self._reporter = PeriodicProcess(
            kernel, config.report_interval, self._report_sweep,
            label="replica-report-sweep")
        self._maintenance: Optional[PeriodicProcess] = None
        self.report_sweeps = 0
        #: Optional fault injector (set by its ``install()``); gates the
        #: metric-report RPCs and feeds the telemetry chaos counters.
        self.chaos = None

        self.cluster.add_failover_listener(self._on_failover)
        self.control_plane.add_drop_listener(self._on_drop)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin the periodic report sweep (and maintenance if enabled)."""
        self._reporter.start()
        if self.config.maintenance_interval_hours > 0:
            self._maintenance = PeriodicProcess(
                self.kernel, HOUR, self._maintenance_tick,
                label="maintenance-upgrades")
            self._maintenance.start()

    def stop(self) -> None:
        self._reporter.stop()
        if self._maintenance is not None:
            self._maintenance.stop()

    # ------------------------------------------------------------------
    # Periodic behaviour
    # ------------------------------------------------------------------

    def _report_sweep(self, now: int) -> None:
        """Every replica consults its RgManager and reports to the PLB.

        Mirrors Figure 5: SQL replica -> RgManager RPC -> (Toto models
        or actual) -> report to PLB. After all reports, the PLB fixes
        any disk-capacity violations (failovers).
        """
        interval = self.config.report_interval
        # Advisory CPU draws are deferred and batched per node: every
        # replica on a node shares one CPU substream, so collecting the
        # sweep's reporters first lets RgManager make a single
        # vectorized draw per node instead of one scalar numpy call per
        # replica. Per-node report order is preserved, so the draw
        # sequence (and thus the run) is byte-identical.
        cpu_replicas: Dict[int, List[Replica]] = defaultdict(list)
        cpu_databases: Dict[int, List[DatabaseInstance]] = defaultdict(list)
        for record in self.cluster.services():
            database = self.control_plane.database(record.service_id)
            # Primary reports first so persisted metrics are fresh when
            # the secondaries read them (§3.3.2).
            ordered = sorted(record.replicas, key=_report_order)
            for replica in ordered:
                node_id = replica.node_id
                if node_id is None:
                    continue
                node = self.cluster.node(node_id)
                if node.in_maintenance:
                    continue  # node is restarting; report skipped
                if self.chaos is not None and \
                        not self.chaos.rpc_gate(node_id, now):
                    continue  # metric-report RPC lost to injected fault
                rgmanager = self.rgmanagers[node_id]
                loads = rgmanager.get_metric_loads(
                    replica, database, now, interval, observe_cpu=False)
                self.cluster.report_load(replica, loads)
                cpu_replicas[node_id].append(replica)
                cpu_databases[node_id].append(database)
        for node_id, node_replicas in cpu_replicas.items():
            self.rgmanagers[node_id].observe_cpu_usage_batch(
                node_replicas, cpu_databases[node_id], now, interval)
        self.cluster.sweep_violations(now)
        for rgmanager in self.rgmanagers:
            rgmanager.apply_cpu_governance(interval)
        self.report_sweeps += 1

    def _maintenance_tick(self, now: int) -> None:
        """Occasionally take one node through a maintenance upgrade."""
        rng = self.rng.stream("maintenance")
        probability = 1.0 / self.config.maintenance_interval_hours
        if rng.random() >= probability:
            return
        candidates = [n for n in self.cluster.nodes if not n.in_maintenance]
        if not candidates:
            return
        node = candidates[int(rng.integers(len(candidates)))]
        node.in_maintenance = True
        duration = int(self.config.maintenance_duration_hours * HOUR)
        self.kernel.schedule_oneshot_after(
            duration, lambda: setattr(node, "in_maintenance", False),
            label=f"maintenance-end-node-{node.node_id}")

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------

    def _on_failover(self, record: FailoverRecord) -> None:
        """Clear node-local RgManager memory for the moved replica.

        This is what makes non-persisted metrics reset after a
        failover: the source node forgets, and the destination node has
        never seen the replica.
        """
        self.rgmanagers[record.from_node].forget_replica(record.replica_id)

    def _on_drop(self, database: DatabaseInstance) -> None:
        for replica_id in database.dropped_replica_ids:
            for rgmanager in self.rgmanagers:
                rgmanager.forget_replica(replica_id)

    # ------------------------------------------------------------------
    # Convenience KPIs
    # ------------------------------------------------------------------

    def reserved_cores(self) -> float:
        return self.cluster.reserved_cores()

    def disk_usage_gb(self) -> float:
        return self.cluster.disk_usage_gb()

    def free_cores(self) -> float:
        from repro.fabric.metrics import CPU_CORES
        return self.cluster.free_capacity(CPU_CORES)
