"""A multi-ring region: ring selection and redirect routing.

Paper §3.1/§4.1.1: an Azure region is made up of many tenant rings;
"when a customer wishes to create a new database, after a cluster is
chosen, the request is forwarded to the cluster's Placement and Load
Balancer", and the training pipeline assumes "each tenant ring in a
region had equal probability of being selected". §5.3.1 adds that a
redirected create goes "to another tenant ring that has enough
capacity".

:class:`Region` composes several :class:`TenantRing` instances under a
region-level control plane that implements exactly that routing:
uniform ring choice, then fail-over to the remaining rings in a
deterministic rotation when the chosen ring redirects. The single-ring
benchmark (the paper's §5 setup) is the special case ``ring_count=1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import AdmissionRejected, UnknownDatabaseError
from repro.rng import RngRegistry
from repro.simkernel import SimulationKernel
from repro.sqldb.database import DatabaseInstance
from repro.sqldb.tenant_ring import TenantRing, TenantRingConfig


@dataclass(frozen=True)
class RegionalCreateOutcome:
    """Where one create request finally landed."""

    database: Optional[DatabaseInstance]
    chosen_ring: int
    placed_ring: Optional[int]
    redirects: int

    @property
    def admitted(self) -> bool:
        return self.database is not None

    @property
    def was_redirected(self) -> bool:
        return self.redirects > 0


class Region:
    """Several tenant rings plus region-level create routing."""

    def __init__(self, kernel: SimulationKernel, ring_count: int,
                 config: TenantRingConfig, rng_registry: RngRegistry,
                 name: str = "region") -> None:
        if ring_count < 1:
            raise ValueError(f"ring_count must be >= 1, got {ring_count}")
        self.kernel = kernel
        self.name = name
        self.rings: List[TenantRing] = [
            TenantRing(kernel, config, rng_registry,
                       plb_rng_name=f"plb-{name}-ring-{index}")
            for index in range(ring_count)
        ]
        self._rng = rng_registry.stream(
            name, "ring-selection")  # totolint: substream=*/ring-selection
        self.creates_routed = 0
        self.creates_rejected_region_wide = 0
        self.cross_ring_redirects = 0

    @property
    def ring_count(self) -> int:
        return len(self.rings)

    def start(self) -> None:
        for ring in self.rings:
            ring.start()

    def stop(self) -> None:
        for ring in self.rings:
            ring.stop()

    # ------------------------------------------------------------------

    def create_database(self, slo_name: str, now: int,
                        initial_data_gb: float,
                        **flags) -> RegionalCreateOutcome:
        """Route a create: uniform ring choice, then redirect rotation.

        Returns an outcome rather than raising: a create that no ring
        can admit is a *region-wide* rejection, which production would
        surface to the customer as a provisioning failure.
        """
        self.creates_routed += 1
        chosen = int(self._rng.integers(self.ring_count))
        order = [(chosen + offset) % self.ring_count
                 for offset in range(self.ring_count)]
        redirects = 0
        for ring_index in order:
            ring = self.rings[ring_index]
            try:
                database = ring.control_plane.create_database(
                    slo_name=slo_name, now=now,
                    initial_data_gb=initial_data_gb, **flags)
            except AdmissionRejected:
                redirects += 1
                continue
            if ring_index != chosen:
                self.cross_ring_redirects += 1
            return RegionalCreateOutcome(database=database,
                                         chosen_ring=chosen,
                                         placed_ring=ring_index,
                                         redirects=redirects)
        self.creates_rejected_region_wide += 1
        return RegionalCreateOutcome(database=None, chosen_ring=chosen,
                                     placed_ring=None, redirects=redirects)

    def drop_database(self, db_id: str, now: int) -> DatabaseInstance:
        """Drop a database from whichever ring hosts it."""
        ring = self.find_ring(db_id)
        if ring is None:
            from repro.errors import UnknownDatabaseError
            raise UnknownDatabaseError(
                f"no ring in {self.name} hosts '{db_id}'")
        return ring.control_plane.drop_database(db_id, now)

    def find_ring(self, db_id: str) -> Optional[TenantRing]:
        """The ring hosting an active database, if any."""
        for ring in self.rings:
            try:
                database = ring.control_plane.database(db_id)
            except UnknownDatabaseError:
                continue
            if database.is_active:
                return ring
        return None

    # ------------------------------------------------------------------

    def active_count(self) -> int:
        return sum(ring.control_plane.active_count() for ring in self.rings)

    def reserved_cores(self) -> float:
        return sum(ring.reserved_cores() for ring in self.rings)

    def disk_usage_gb(self) -> float:
        return sum(ring.disk_usage_gb() for ring in self.rings)

    def ring_populations(self) -> List[int]:
        """Active databases per ring (the §4.1.1 uniformity check)."""
        return [ring.control_plane.active_count() for ring in self.rings]

    def redirect_counts(self) -> List[int]:
        """Creation redirects recorded per ring."""
        return [ring.control_plane.redirect_count() for ring in self.rings]
