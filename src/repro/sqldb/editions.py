"""SQL DB editions and storage kinds.

Paper §2: "Remote-store databases include editions like 'Standard DTU'
and 'General Purpose VCore' (GP) [...] Local-store databases include
editions like 'Premium DTU' and 'Business Critical VCore' (BC) and the
database files are stored on the compute node local SSDs. For
redundancy, these local-store databases are also replicated four times
on four different compute nodes."

The paper's models treat the two edition families as the unit of
demographic segmentation, so we collapse (Standard DTU, GP vCore) into
``STANDARD_GP`` and (Premium DTU, BC vCore) into ``PREMIUM_BC``, as the
paper itself does throughout §4-5.
"""

from __future__ import annotations

import enum


class StorageKind(enum.Enum):
    """Where a database's data files live."""

    REMOTE = "remote"
    LOCAL_SSD = "local-ssd"


class Edition(enum.Enum):
    """The two edition families the paper models."""

    STANDARD_GP = "Standard/GP"
    PREMIUM_BC = "Premium/BC"

    @property
    def storage(self) -> StorageKind:
        """Remote store for GP, local SSD for BC."""
        if self is Edition.STANDARD_GP:
            return StorageKind.REMOTE
        return StorageKind.LOCAL_SSD

    @property
    def replica_count(self) -> int:
        """GP runs a single replica; BC is replicated four times (§2)."""
        if self is Edition.STANDARD_GP:
            return 1
        return 4

    @property
    def is_local_store(self) -> bool:
        return self.storage is StorageKind.LOCAL_SSD

    @property
    def short_name(self) -> str:
        """Compact label used in reports ('GP' / 'BC')."""
        return "GP" if self is Edition.STANDARD_GP else "BC"


#: Local tempdb footprint a remote-store replica starts with; tempdb is
#: the only local disk a GP database consumes (§2) and it is lost on
#: failover (§3.3.2).
GP_TEMPDB_BASELINE_GB = 8.0

#: Cold memory footprint of a freshly (re)started replica; after a
#: failover the buffer pool restarts cold (§3.3.2).
COLD_BUFFER_POOL_GB = 2.0
