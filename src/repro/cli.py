"""Command-line interface.

Exposes the benchmark framework the way an operator would use it::

    python -m repro density-study --days 2
    python -m repro quickstart --density 120 --hours 12
    python -m repro run --density 110 --hours 24 --chaos moderate
    python -m repro run --hours 6 --trace --metrics --profile --obs-dir out
    python -m repro train --out models.xml
    python -m repro validate
    python -m repro repeatability --repeats 3 --hours 18
    python -m repro incident --slo BC_Gen5_6 --growth-gb 1300 --density 140
    python -m repro lint --format json

Every subcommand prints the same plain-text tables the benchmark
harness emits, so CLI runs and ``pytest benchmarks/`` agree.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro import __version__
from repro.core.runner import run_scenario
from repro.core.scenario import ScriptedCreate
from repro.experiments.demographics import DemographicsStudy
from repro.experiments.density import DensityStudy
from repro.experiments.model_validation import ModelValidationStudy
from repro.experiments.nondeterminism import NondeterminismStudy
from repro.experiments.scenarios import (
    CHAOS_PROFILES,
    chaos_profile,
    paper_scenario,
    trained_artifacts,
)
from repro.core.model_xml import serialize_model_xml
from repro.fabric.backend import backend_names
from repro.units import HOUR, format_duration


def _parse_densities(raw: str) -> tuple:
    densities = tuple(sorted(int(token) / 100.0
                             for token in raw.split(",")))
    if 1.0 not in densities:
        densities = tuple(sorted((1.0,) + densities))
    return densities


def _workers(args: argparse.Namespace) -> Optional[int]:
    """--workers: 1 = serial (default), 0 = one per CPU core, N = N."""
    return None if args.workers == 0 else args.workers


def _worker_count(token: str) -> int:
    count = int(token)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one per CPU core), got {count}")
    return count


def _add_workers_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--workers", type=_worker_count, default=1,
        help="worker processes for the sweep (1 = serial, 0 = one per "
             "CPU core); results are identical at any setting")


def _print_progress(progress) -> None:
    mode = "parallel" if progress.parallel else "serial"
    print(f"  [{progress.completed}/{progress.total}] "
          f"{progress.scenario_name} done ({mode})")


def cmd_density_study(args: argparse.Namespace) -> int:
    study = DensityStudy(densities=_parse_densities(args.densities),
                         days=args.days, seed=args.seed,
                         maintenance=not args.no_maintenance,
                         max_workers=_workers(args),
                         progress=_print_progress)
    print(f"running {len(study.densities)} experiments x "
          f"{args.days:g} simulated days (seed {args.seed}, "
          f"workers {args.workers or 'auto'}) ...")
    study.run()
    for section in (study.format_tables(), study.format_figure10(),
                    study.format_figure12(), study.format_figure14(),
                    study.format_figure2()):
        print()
        print(section)
    return 0


def cmd_quickstart(args: argparse.Namespace) -> int:
    scenario = paper_scenario(density=args.density / 100.0,
                              days=args.hours / 24.0,
                              seed=args.seed, maintenance=False)
    print(f"running {scenario.name} for "
          f"{format_duration(scenario.duration)} ...")
    result = run_scenario(scenario)
    kpis = result.kpis
    print(f"reserved cores : {kpis.final_reserved_cores:.0f} "
          f"({kpis.core_utilization:.1%})")
    print(f"disk usage     : {kpis.final_disk_gb:,.0f} GB "
          f"({kpis.disk_utilization:.1%})")
    print(f"redirects      : {kpis.creation_redirects}")
    print(f"failovers      : {kpis.failovers.count} "
          f"({kpis.failovers.total_cores_moved:.0f} cores)")
    print(f"adjusted rev.  : ${result.revenue.total_adjusted:,.2f} "
          f"(penalty ${result.revenue.total_penalty:,.2f})")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    scenario = paper_scenario(density=args.density / 100.0,
                              days=args.hours / 24.0,
                              seed=args.seed, maintenance=False,
                              backend=args.backend)
    if args.chaos:
        scenario = scenario.with_chaos(chaos_profile(args.chaos))
    obs_on = args.trace or args.metrics or args.profile
    if obs_on:
        import time
        from repro.obs import ObsConfig
        # The wall clock is injected as a function *reference*; the obs
        # package itself never reads time (rule TL014) and wall numbers
        # appear only in the human profile report, never in exports.
        scenario = scenario.with_obs(ObsConfig(
            trace=args.trace, metrics=args.metrics, profile=args.profile,
            wall_clock=time.perf_counter if args.profile else None))
    print(f"running {scenario.name} for "
          f"{format_duration(scenario.duration)} ...")
    detsan_exit = 0
    result = None
    if args.detsan:
        from repro.analysis.detsan import verify_run
        result, report = verify_run(scenario)
        print(report.format())
        detsan_exit = 0 if report.ok else 1
    if args.perfsan:
        from repro.analysis.perfsan import verify_perf_run
        result, perf_report = verify_perf_run(scenario)
        print(perf_report.format())
        detsan_exit = detsan_exit or (0 if perf_report.ok else 1)
    if args.floatsan:
        from repro.analysis.floatsan import verify_float_run
        result, float_report = verify_float_run(scenario)
        print(float_report.format())
        detsan_exit = detsan_exit or (0 if float_report.ok else 1)
    if result is None:
        result = run_scenario(scenario)
    kpis = result.kpis
    print(f"reserved cores : {kpis.final_reserved_cores:.0f} "
          f"({kpis.core_utilization:.1%})")
    print(f"disk usage     : {kpis.final_disk_gb:,.0f} GB "
          f"({kpis.disk_utilization:.1%})")
    print(f"redirects      : {kpis.creation_redirects}")
    print(f"failovers      : {kpis.failovers.count} "
          f"({kpis.failovers.total_cores_moved:.0f} cores)")
    print(f"adjusted rev.  : ${result.revenue.total_adjusted:,.2f} "
          f"(penalty ${result.revenue.total_penalty:,.2f})")
    chaos = kpis.chaos
    if chaos is not None:
        print(f"faults injected: {chaos.faults_injected} "
              + " ".join(f"{kind}={count}"
                         for kind, count in chaos.injected_by_kind))
        print(f"chaos retries  : {chaos.retries} "
              f"(over {chaos.probes} backoff probes)")
        print(f"degraded       : {chaos.degraded_intervals} intervals "
              f"(naming={chaos.naming_unavailable_errors}, "
              f"rpc-lost={chaos.rpc_reports_lost}, "
              f"creates-timed-out={chaos.creates_timed_out}, "
              f"drops-deferred={chaos.drops_deferred}, "
              f"pm-stalled={chaos.pm_ticks_stalled})")
    if obs_on and result.obs is not None:
        import pathlib
        from repro.obs import (format_profile_report, git_describe,
                               write_obs_export)
        written = write_obs_export(result.obs, pathlib.Path(args.obs_dir),
                                   scenario, git=git_describe())
        for path in written:
            print(f"wrote {path}")
        if result.obs.profile_json is not None:
            print()
            print(format_profile_report(result.obs.profile_json,
                                        top=args.profile_top))
    return detsan_exit


def cmd_train(args: argparse.Namespace) -> int:
    artifacts = trained_artifacts(training_seed=args.seed,
                                  training_days=args.days,
                                  disk_corpus_size=args.corpus)
    xml = serialize_model_xml(artifacts.document)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(xml)
        print(f"wrote {len(xml):,} bytes of model XML to {args.out}")
    else:
        print(xml)
    for edition, dataset in artifacts.datasets.items():
        print(f"# {edition.value}: steady={dataset.steady_fraction:.2%} "
              f"initial_p={dataset.initial_probability:.3f} "
              f"rapid_p={dataset.rapid_probability:.3f}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    study = ModelValidationStudy(training_seed=args.seed)
    print(study.format_report())
    # Training-quality diagnostics for every event trace.
    from repro.models.diagnostics import diagnose_trace
    print("\ntraining diagnostics:")
    for (edition, kind), trace in study.artifacts.event_traces.items():
        diagnostics = diagnose_trace(trace)
        flag = "ok" if diagnostics.healthy() else "CHECK"
        print(f"  {edition.short_name} {kind:>6}: "
              f"{diagnostics.summary()}  [{flag}]")
    return 0


def cmd_demographics(args: argparse.Namespace) -> int:
    print(DemographicsStudy(seed=args.seed).format_report())
    return 0


def cmd_repeatability(args: argparse.Namespace) -> int:
    study = NondeterminismStudy(repeats=args.repeats, hours=args.hours,
                                seed=args.seed,
                                max_workers=_workers(args))
    print(f"running {args.repeats} identical {args.hours:g}h experiments "
          "(only the PLB seed differs) ...")
    print(study.format_report())
    return 0


def cmd_incident(args: argparse.Namespace) -> int:
    incident = ScriptedCreate(
        at_offset=int(args.at_hour * HOUR),
        slo_name=args.slo,
        initial_data_gb=args.data_gb,
        high_initial_growth=args.growth_gb > 0,
        initial_growth_total_gb=args.growth_gb,
        rapid_growth=args.rapid,
    )
    base = paper_scenario(density=args.density / 100.0, days=args.days,
                          seed=args.seed, maintenance=False)
    scenario = dataclasses.replace(base, name=base.name + "-incident",
                                   scripted_creates=(incident,))
    print(f"replaying {args.slo} (+{args.growth_gb:g} GB growth) at "
          f"h{args.at_hour:g}, {args.density}% density ...")
    result = run_scenario(scenario)
    admitted = [db for db in result.databases
                if db.initial_growth_total_gb == args.growth_gb
                and not db.from_bootstrap
                and db.slo.name == args.slo]
    print("incident " + ("ADMITTED" if admitted else "REDIRECTED"))
    kpis = result.kpis
    print(f"final disk {kpis.final_disk_gb:,.0f} GB "
          f"({kpis.disk_utilization:.1%}), "
          f"{kpis.failovers.count} failovers, "
          f"penalty ${result.revenue.total_penalty:,.2f}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint
    return run_lint(paths=args.paths, output_format=args.format,
                    rules=args.rules, list_rules=args.list_rules,
                    sarif=args.sarif, baseline=args.baseline,
                    write_baseline=args.write_baseline,
                    cache=args.cache, no_program=args.no_program,
                    select=args.select, ignore=args.ignore)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Toto cloud-service efficiency benchmark (SIGMOD'21 "
                    "reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    density = sub.add_parser("density-study",
                             help="the §5 density sweep")
    density.add_argument("--days", type=float, default=6.0)
    density.add_argument("--seed", type=int, default=42)
    density.add_argument("--densities", default="100,110,120,140",
                         help="comma-separated percentages")
    density.add_argument("--no-maintenance", action="store_true")
    _add_workers_flag(density)
    density.set_defaults(func=cmd_density_study)

    quick = sub.add_parser("quickstart", help="one short benchmark run")
    quick.add_argument("--density", type=float, default=110.0)
    quick.add_argument("--hours", type=float, default=12.0)
    quick.add_argument("--seed", type=int, default=42)
    quick.set_defaults(func=cmd_quickstart)

    run = sub.add_parser("run",
                         help="one benchmark run, optionally under a "
                              "fault-injection (chaos) profile")
    run.add_argument("--density", type=float, default=110.0)
    run.add_argument("--hours", type=float, default=24.0)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--chaos", default=None, metavar="PROFILE",
                     choices=sorted(CHAOS_PROFILES),
                     help="fault-injection profile: "
                          + ", ".join(sorted(CHAOS_PROFILES)))
    run.add_argument("--backend", default="annealing",
                     choices=backend_names(),
                     help="orchestrator backend placing and balancing "
                          "replicas (default: %(default)s)")
    run.add_argument("--detsan", action="store_true",
                     help="run under the determinism sanitizer: execute "
                          "twice, cross-check the RNG/event ledgers and "
                          "the static substream registry (exit 1 on any "
                          "divergence or unknown draw site)")
    run.add_argument("--perfsan", action="store_true",
                     help="run under the allocation sanitizer: meter "
                          "per-call allocation in the inferred hot set "
                          "with tracemalloc and cross-check the static "
                          "TL020 allocation-free verdicts (exit 1 on "
                          "any mismatch or a stale hot set)")
    run.add_argument("--floatsan", action="store_true",
                     help="run under the reduction-order sanitizer: "
                          "audit every registered merge-fn's operand "
                          "order, replay insensitive-declared merges "
                          "under permutation, and cross-check the "
                          "static TL034 registry (exit 1 on any "
                          "divergence or a stale registry)")
    run.add_argument("--trace", action="store_true",
                     help="record a span per executed event (plus chaos "
                          "gate marks) to trace.jsonl")
    run.add_argument("--metrics", action="store_true",
                     help="stream the metric registry per telemetry hour "
                          "to metrics.jsonl and dump final values in "
                          "Prometheus textfile format to metrics.prom")
    run.add_argument("--profile", action="store_true",
                     help="per-event-label scheduling-delay histograms "
                          "and wall-time hot-spot report (profile.json)")
    run.add_argument("--obs-dir", default="obs-out", metavar="DIR",
                     help="directory for observability exports "
                          "(default: %(default)s); a manifest.json is "
                          "written alongside every export")
    run.add_argument("--profile-top", type=int, default=15, metavar="N",
                     help="rows in the printed profile report "
                          "(default: %(default)s)")
    run.set_defaults(func=cmd_run)

    train = sub.add_parser("train",
                           help="train models, emit the XML blob")
    train.add_argument("--seed", type=int, default=20210620)
    train.add_argument("--days", type=int, default=14)
    train.add_argument("--corpus", type=int, default=1200)
    train.add_argument("--out", default=None,
                       help="file to write the XML to (default: stdout)")
    train.set_defaults(func=cmd_train)

    validate = sub.add_parser("validate",
                              help="Figures 7-9 model validation")
    validate.add_argument("--seed", type=int, default=20210620)
    validate.set_defaults(func=cmd_validate)

    demo = sub.add_parser("demographics",
                          help="Figures 3a/3b/6 telemetry views")
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(func=cmd_demographics)

    repeat = sub.add_parser("repeatability",
                            help="the §5.3.4 PLB non-determinism study")
    repeat.add_argument("--repeats", type=int, default=3)
    repeat.add_argument("--hours", type=float, default=18.0)
    repeat.add_argument("--seed", type=int, default=42)
    _add_workers_flag(repeat)
    repeat.set_defaults(func=cmd_repeatability)

    incident = sub.add_parser("incident",
                              help="replay a production incident")
    incident.add_argument("--slo", default="BC_Gen5_6")
    incident.add_argument("--data-gb", type=float, default=50.0)
    incident.add_argument("--growth-gb", type=float, default=1300.0)
    incident.add_argument("--at-hour", type=float, default=30.0)
    incident.add_argument("--density", type=float, default=140.0)
    incident.add_argument("--days", type=float, default=2.0)
    incident.add_argument("--seed", type=int, default=42)
    incident.add_argument("--rapid", action="store_true")
    incident.set_defaults(func=cmd_incident)

    from repro.analysis.cli import add_lint_arguments
    lint = sub.add_parser(
        "lint",
        help="determinism, perf & numeric static analysis "
             "(TL001..TL014, TL020..TL024, TL030..TL034)")
    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
