"""The materialized observability artifacts of one run.

:class:`ObsExport` carries the rendered artifact *strings* inside the
:class:`~repro.core.runner.BenchmarkResult`, so exports survive the
:class:`~repro.parallel.executor.SweepExecutor` pickle boundary intact
and can be byte-compared between serial and pooled runs before any
file is written. :func:`write_obs_export` is the single place bytes
reach disk — always accompanied by a manifest.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.obs.manifest import build_manifest, render_manifest

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids cycles
    from repro.core.scenario import BenchmarkScenario

#: Artifact file names inside an export directory.
TRACE_FILENAME = "trace.jsonl"
METRICS_JSONL_FILENAME = "metrics.jsonl"
METRICS_PROM_FILENAME = "metrics.prom"
PROFILE_FILENAME = "profile.json"
MANIFEST_FILENAME = "manifest.json"


@dataclass(frozen=True)
class ObsExport:
    """Rendered artifacts of one run (None = feature was off)."""

    trace_jsonl: Optional[str] = None
    metrics_jsonl: Optional[str] = None
    metrics_prom: Optional[str] = None
    profile_json: Optional[str] = None

    def artifacts(self) -> Dict[str, str]:
        """Filename -> content for every produced artifact."""
        produced: Dict[str, str] = {}
        if self.trace_jsonl is not None:
            produced[TRACE_FILENAME] = self.trace_jsonl
        if self.metrics_jsonl is not None:
            produced[METRICS_JSONL_FILENAME] = self.metrics_jsonl
        if self.metrics_prom is not None:
            produced[METRICS_PROM_FILENAME] = self.metrics_prom
        if self.profile_json is not None:
            produced[PROFILE_FILENAME] = self.profile_json
        return produced


def write_obs_export(export: ObsExport, directory: pathlib.Path,
                     scenario: "BenchmarkScenario",
                     git: Optional[str] = None) -> List[pathlib.Path]:
    """Write every artifact plus ``manifest.json`` into ``directory``.

    Returns the written paths (manifest last). The directory is created
    if missing; existing artifacts are overwritten — an export is a
    deterministic function of the scenario, so rewriting is idempotent.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[pathlib.Path] = []
    for name, content in export.artifacts().items():
        path = directory / name
        path.write_text(content, encoding="utf-8")
        written.append(path)
    manifest = build_manifest(scenario, export, git=git)
    manifest_path = directory / MANIFEST_FILENAME
    manifest_path.write_text(render_manifest(manifest), encoding="utf-8")
    written.append(manifest_path)
    return written
