"""Streaming metric export: a central registry of named counters/gauges.

Components do not push values; they register *sources* (zero-argument
callables reading live simulation state) under stable metric names.
The registry samples every source at once — triggered by each hourly
:class:`~repro.telemetry.collector.TelemetryFrame`, so a sample is
exactly coherent with the frame it annotates — and renders two
artifacts:

* ``metrics.jsonl`` — one JSON line per telemetry frame with every
  metric's value at that hour (the streamed resource series the
  Kubernetes resource-model reproduction compares predicted vs.
  observed consumption over);
* ``metrics.prom`` — Prometheus textfile exposition of the final
  values, suitable for a node-exporter textfile collector.

Naming convention: every metric is prefixed ``toto_``; cumulative
counters end in ``_total``; gauges carry bare unit-suffixed names.
Both are enforced at registration time.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Tuple, TYPE_CHECKING

from repro.obs.sink import ListSink

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids cycles
    from repro.simkernel import SimulationKernel
    from repro.sqldb.tenant_ring import TenantRing
    from repro.telemetry.collector import TelemetryCollector, TelemetryFrame

#: A metric source: reads one value from live simulation state.
MetricSource = Callable[[], float]

_NAME_PATTERN = re.compile(r"^toto_[a-z0-9_]+$")


class MetricRegistryError(ValueError):
    """Invalid metric registration (bad name, duplicate, wrong kind)."""


class MetricRegistry:
    """Central catalogue of the run's named counters and gauges."""

    def __init__(self) -> None:
        self._sources: Dict[str, MetricSource] = {}
        self._kinds: Dict[str, str] = {}
        self._helps: Dict[str, str] = {}

    # ------------------------------------------------------------------

    def counter(self, name: str, help_text: str,
                source: MetricSource) -> None:
        """Register a cumulative counter (name must end in ``_total``)."""
        if not name.endswith("_total"):
            raise MetricRegistryError(
                f"counter {name!r} must end in '_total'")
        self._register(name, "counter", help_text, source)

    def gauge(self, name: str, help_text: str, source: MetricSource) -> None:
        """Register a point-in-time gauge."""
        if name.endswith("_total"):
            raise MetricRegistryError(
                f"gauge {name!r} must not end in '_total'")
        self._register(name, "gauge", help_text, source)

    def _register(self, name: str, kind: str, help_text: str,
                  source: MetricSource) -> None:
        if not _NAME_PATTERN.match(name):
            raise MetricRegistryError(
                f"metric name {name!r} must match {_NAME_PATTERN.pattern}")
        if name in self._sources:
            raise MetricRegistryError(f"metric {name!r} already registered")
        self._sources[name] = source
        self._kinds[name] = kind
        self._helps[name] = help_text

    # ------------------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        """Every registered metric name, sorted."""
        return tuple(sorted(self._sources))

    def kind(self, name: str) -> str:
        return self._kinds[name]

    def collect(self) -> List[Tuple[str, float]]:
        """Sample every source once, in sorted-name order."""
        return [(name, float(self._sources[name]()))
                for name in sorted(self._sources)]

    def to_prometheus(self) -> str:
        """Prometheus textfile exposition of the current values."""
        lines: List[str] = []
        for name, value in self.collect():
            lines.append(f"# HELP {name} {self._helps[name]}")
            lines.append(f"# TYPE {name} {self._kinds[name]}")
            lines.append(f"{name} {value!r}")
        return "\n".join(lines) + ("\n" if lines else "")


class MetricStream:
    """Per-hour JSONL sampling of a registry, driven by telemetry frames."""

    def __init__(self, registry: MetricRegistry) -> None:
        self.registry = registry
        self._sink = ListSink()
        self.samples = 0

    def on_frame(self, frame: "TelemetryFrame") -> None:
        """Telemetry-frame listener: sample every metric now."""
        self._sink.emit({
            "type": "sample",
            "hour": frame.hour_index,
            "time": frame.time,
            "metrics": dict(self.registry.collect()),
        })
        self.samples += 1

    def render(self) -> str:
        return self._sink.render()


# ---------------------------------------------------------------------------
# Standard run wiring


#: Every metric :func:`wire_run_metrics` registers, sorted — the
#: catalogue docs/OBSERVABILITY.md documents and tests pin against.
RUN_METRIC_NAMES: Tuple[str, ...] = (
    "toto_active_bc_databases",
    "toto_active_gp_databases",
    "toto_capacity_failover_bc_cores_total",
    "toto_capacity_failover_cores_total",
    "toto_capacity_failovers_total",
    "toto_chaos_degraded_intervals_total",
    "toto_chaos_faults_injected_total",
    "toto_chaos_retries_total",
    "toto_core_utilization",
    "toto_disk_usage_gb",
    "toto_disk_utilization",
    "toto_kernel_events_executed_total",
    "toto_nodes_in_maintenance",
    "toto_plb_anneal_iterations_total",
    "toto_plb_make_room_moves_total",
    "toto_plb_moves_total",
    "toto_plb_placement_failures_total",
    "toto_plb_placements_total",
    "toto_plb_stuck_violations_total",
    "toto_redirects_total",
    "toto_report_sweeps_total",
    "toto_reserved_cores",
    "toto_rgmanager_naming_degraded_total",
    "toto_rgmanager_rpcs_total",
)


def _frame_source(collector: "TelemetryCollector",
                  attribute: str) -> MetricSource:
    """Read one attribute off the newest telemetry frame (0.0 if none)."""
    def read() -> float:
        frames = collector.frames
        if not frames:
            return 0.0
        return float(getattr(frames[-1], attribute))
    return read


def wire_run_metrics(registry: MetricRegistry, kernel: "SimulationKernel",
                     ring: "TenantRing",
                     collector: "TelemetryCollector") -> None:
    """Register the standard benchmark-run metric catalogue.

    Frame-derived metrics read the newest
    :class:`~repro.telemetry.collector.TelemetryFrame` (sampling happens
    on the frame listener, so the value is the frame's); the rest read
    live component state at the same instant. Chaos counters are always
    registered — they report 0 for chaos-free runs so the export schema
    is stable across profiles.
    """
    frame_gauges = (
        ("toto_reserved_cores", "reserved_cores",
         "Reserved CPU cores on live nodes (Figure 11)."),
        ("toto_disk_usage_gb", "disk_gb",
         "Disk usage on live nodes in GB (Figure 11)."),
        ("toto_core_utilization", "core_utilization",
         "Reserved cores over cluster core capacity."),
        ("toto_disk_utilization", "disk_utilization",
         "Disk usage over cluster disk capacity."),
        ("toto_active_gp_databases", "active_gp",
         "Active Standard/GP databases."),
        ("toto_active_bc_databases", "active_bc",
         "Active Premium/BC databases."),
        ("toto_nodes_in_maintenance", "nodes_in_maintenance",
         "Nodes excluded from this frame by a maintenance upgrade."),
    )
    for name, attribute, help_text in frame_gauges:
        registry.gauge(name, help_text, _frame_source(collector, attribute))

    frame_counters = (
        ("toto_redirects_total", "redirects_cumulative",
         "Creation redirects since the official start (Figure 10)."),
        ("toto_capacity_failovers_total", "failover_count_cumulative",
         "Capacity failovers since the official start (Figure 12b)."),
        ("toto_capacity_failover_cores_total", "failover_cores_cumulative",
         "CPU cores moved by capacity failovers."),
        ("toto_capacity_failover_bc_cores_total",
         "failover_bc_cores_cumulative",
         "Premium/BC cores moved by capacity failovers."),
        ("toto_chaos_faults_injected_total", "faults_injected_cumulative",
         "Faults activated by the chaos injector (0 without chaos)."),
        ("toto_chaos_retries_total", "chaos_retries_cumulative",
         "Virtual-time backoff retries spent on injected faults."),
        ("toto_chaos_degraded_intervals_total",
         "degraded_intervals_cumulative",
         "Component intervals degraded by injected faults."),
    )
    for name, attribute, help_text in frame_counters:
        registry.counter(name, help_text, _frame_source(collector, attribute))

    plb_stats = ring.cluster.plb.stats
    plb_help = {
        "placements": "Successful PLB placement decisions.",
        "placement_failures": "Placements with no feasible node set.",
        "moves": "Replica moves performed to fix capacity violations.",
        "make_room_moves":
            "Proactive relocations made to fit a new placement.",
        "stuck_violations":
            "Capacity violations the PLB could not resolve.",
        "anneal_iterations":
            "Simulated-annealing iterations spent on placement.",
    }
    for attribute in plb_stats.as_metrics():
        registry.counter(
            f"toto_plb_{attribute}_total", plb_help[attribute],
            lambda stats=plb_stats, attr=attribute: getattr(stats, attr))

    registry.counter(
        "toto_report_sweeps_total",
        "Completed replica metric-report sweeps (Figure 5 loop).",
        lambda: ring.report_sweeps)
    registry.counter(
        "toto_rgmanager_rpcs_total",
        "Metric-report RPCs answered by RgManagers across all nodes.",
        lambda: sum(m.rpcs_served for m in ring.rgmanagers))
    registry.counter(
        "toto_rgmanager_naming_degraded_total",
        "RPCs answered from last-known-good state during naming outages.",
        lambda: sum(m.naming_degraded for m in ring.rgmanagers))
    registry.counter(
        "toto_kernel_events_executed_total",
        "Events executed by the simulation kernel.",
        lambda: kernel.events_executed)
