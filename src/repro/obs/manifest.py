"""Run manifests: what exactly produced an export.

Every export directory gets a ``manifest.json`` recording the inputs
that determine the run (seed, PLB salt, chaos profile, model-document
fingerprint) plus the code identity (``repro`` version, ``git
describe``) and a sha256 per artifact. Deliberately absent: any
timestamp — a manifest for the same scenario at the same code revision
is itself byte-identical, so manifests can be diffed like the exports
they describe.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import subprocess
from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids cycles
    from repro.core.scenario import BenchmarkScenario
    from repro.obs.export import ObsExport

#: Version stamp of the manifest schema.
MANIFEST_SCHEMA_VERSION = 1


def sha256_text(text: str) -> str:
    """Hex digest of one artifact's bytes (UTF-8)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def git_describe(repo_root: Optional[pathlib.Path] = None) -> str:
    """``git describe --always --dirty`` of the working tree.

    Returns ``"unknown"`` where git or the repository is unavailable
    (e.g. an installed wheel); the manifest stays writable everywhere.
    """
    if repo_root is None:
        repo_root = pathlib.Path(__file__).resolve().parents[3]
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=repo_root, capture_output=True, text=True, timeout=10,
            check=False)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


def model_document_fingerprint(scenario: "BenchmarkScenario") -> str:
    """Stable fingerprint of the scenario's trained model document.

    The paper distributes models as an XML blob; hashing its canonical
    serialization pins "model versions" without inventing a separate
    version counter.
    """
    from repro.core.model_xml import serialize_model_xml
    return sha256_text(serialize_model_xml(scenario.model_document))


def build_manifest(scenario: "BenchmarkScenario", export: "ObsExport",
                   git: Optional[str] = None) -> Dict[str, object]:
    """Assemble the manifest dict for one run's export."""
    from repro import __version__
    artifacts = {name: sha256_text(text)
                 for name, text in export.artifacts().items()}
    return {
        "schema": MANIFEST_SCHEMA_VERSION,
        "scenario": {
            "name": scenario.name,
            "seed": scenario.seed,
            "plb_salt": scenario.plb_salt,
            "duration_hours": scenario.duration_hours,
            "density": scenario.ring.density,
            "node_count": scenario.ring.node_count,
            "chaos_profile": (scenario.chaos.profile
                              if scenario.chaos is not None else None),
        },
        "models": {"document_sha256": model_document_fingerprint(scenario)},
        "code": {
            "repro_version": __version__,
            "git_describe": git if git is not None else git_describe(),
        },
        "artifacts": artifacts,
    }


def render_manifest(manifest: Dict[str, object]) -> str:
    """Canonical JSON encoding of a manifest."""
    return json.dumps(manifest, sort_keys=True, indent=2) + "\n"
