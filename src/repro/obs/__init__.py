"""Run observability: structured tracing, streaming metrics, profiling.

The paper's evaluation is entirely telemetry-driven ("each experiment
was executed in real time and observed by collecting telemetry from
the cluster", §5.2). This package makes the reproduction observable
the same way: span-based event traces, a central metric registry with
Prometheus/JSONL export, per-event-label profiling, and a run manifest
— all deterministic, RNG-free, and byte-identical between serial and
pooled execution (docs/OBSERVABILITY.md).
"""

from repro.obs.config import ObsConfig
from repro.obs.export import ObsExport, write_obs_export
from repro.obs.manifest import build_manifest, git_describe
from repro.obs.metrics import (
    RUN_METRIC_NAMES,
    MetricRegistry,
    MetricStream,
    wire_run_metrics,
)
from repro.obs.profile import EventProfiler, format_profile_report
from repro.obs.session import ObsSession
from repro.obs.sink import ListSink, TraceSink
from repro.obs.trace import SpanTracer

__all__ = [
    "EventProfiler",
    "ListSink",
    "MetricRegistry",
    "MetricStream",
    "ObsConfig",
    "ObsExport",
    "ObsSession",
    "RUN_METRIC_NAMES",
    "SpanTracer",
    "TraceSink",
    "build_manifest",
    "format_profile_report",
    "git_describe",
    "wire_run_metrics",
    "write_obs_export",
]
