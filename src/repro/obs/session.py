"""One run's observability session: glue between config and components.

:class:`ObsSession` is constructed by the
:class:`~repro.core.runner.BenchmarkRunner` when a scenario carries an
:class:`~repro.obs.config.ObsConfig`. It implements the kernel's
:class:`~repro.simkernel.kernel.KernelObserver` protocol (fanning each
event to the tracer and profiler), wires the metric registry to the
telemetry collector's frame stream, hands the chaos injector its trace
hook, and renders the final :class:`~repro.obs.export.ObsExport`.

The session is a pure observer: it schedules no events, draws no RNG,
reads no clock (rule TL014), so a run with a session attached produces
KPIs byte-identical to the same run without one.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.obs.config import ObsConfig
from repro.obs.export import ObsExport
from repro.obs.metrics import MetricRegistry, MetricStream, wire_run_metrics
from repro.obs.profile import EventProfiler
from repro.obs.trace import SpanTracer
from repro.simkernel.event import Event

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids cycles
    from repro.chaos.injector import FaultInjector
    from repro.simkernel import SimulationKernel
    from repro.sqldb.tenant_ring import TenantRing
    from repro.telemetry.collector import TelemetryCollector


class ObsSession:
    """Tracing, metrics, and profiling for one benchmark run."""

    def __init__(self, config: ObsConfig) -> None:
        self.config = config
        self.tracer: Optional[SpanTracer] = (
            SpanTracer() if config.trace else None)
        self.profiler: Optional[EventProfiler] = (
            EventProfiler(clock=config.wall_clock)
            if config.profile else None)
        self.registry: Optional[MetricRegistry] = (
            MetricRegistry() if config.metrics else None)
        self.stream: Optional[MetricStream] = (
            MetricStream(self.registry) if self.registry is not None
            else None)
        #: Pending schedule records keyed by event sequence:
        #: (schedule-time, parent span id). Popped when the event fires;
        #: entries for cancelled events linger, bounded by the number of
        #: events the run schedules.
        self._pending: Dict[int, Tuple[int, Optional[int]]] = {}

    # ------------------------------------------------------------------
    # KernelObserver protocol
    # ------------------------------------------------------------------

    @property
    def kernel_observer(self) -> Optional["ObsSession"]:
        """Self when the kernel loop must call back, else None."""
        return self if self.config.needs_kernel_observer else None

    def event_scheduled(self, event: Event, now: int) -> None:
        parent = (self.tracer.current_span
                  if self.tracer is not None else None)
        self._pending[event.sequence] = (now, parent)

    def event_begin(self, event: Event) -> None:
        entry = self._pending.pop(event.sequence, None)
        scheduled_at, parent = entry if entry is not None \
            else (event.time, None)
        if self.tracer is not None:
            self.tracer.begin(event, scheduled_at, parent)
        if self.profiler is not None:
            self.profiler.begin(event, scheduled_at)

    def event_end(self, event: Event) -> None:
        if self.profiler is not None:
            self.profiler.end(event)
        if self.tracer is not None:
            self.tracer.end(event)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def wire(self, kernel: "SimulationKernel", ring: "TenantRing",
             collector: "TelemetryCollector",
             injector: Optional["FaultInjector"] = None) -> None:
        """Connect the session to a run's components.

        Metric sampling rides the collector's frame listener — no new
        kernel events, so event counts and ordering are untouched.
        """
        if self.registry is not None and self.stream is not None:
            wire_run_metrics(self.registry, kernel, ring, collector)
            collector.add_frame_listener(self.stream.on_frame)
        if self.tracer is not None and injector is not None:
            injector.trace_hook = self.tracer.mark

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self) -> ObsExport:
        """Materialize every enabled artifact as deterministic text."""
        return ObsExport(
            trace_jsonl=(self.tracer.render()
                         if self.tracer is not None else None),
            metrics_jsonl=(self.stream.render()
                           if self.stream is not None else None),
            metrics_prom=(self.registry.to_prometheus()
                          if self.registry is not None else None),
            profile_json=(self.profiler.to_json()
                          if self.profiler is not None else None),
        )
