"""Declarative observability configuration.

:class:`ObsConfig` rides inside a
:class:`~repro.core.scenario.BenchmarkScenario`, so the same frozen,
picklable declaration that describes a run also describes what the run
exports — which is what lets :class:`~repro.parallel.executor.SweepExecutor`
workers produce byte-identical exports to the serial loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class ObsConfig:
    """What one run records and exports (all off by default).

    Attributes:
        trace: emit one JSONL span per executed kernel event (plus
            instant marks at chaos gate decisions), with parent links
            from schedule site to fire site.
        metrics: publish the run's counters/gauges through a
            :class:`~repro.obs.metrics.MetricRegistry`, sampled once per
            telemetry frame into per-hour JSONL and dumped as a
            Prometheus textfile at the end of the run.
        profile: keep per-event-label counts and virtual-time
            scheduling-delay histograms, exported as deterministic JSON.
        profile_top_n: rows in the human-readable top-N profile report.
        wall_clock: optional injected monotonic clock (e.g.
            ``time.perf_counter``) enabling wall-time accounting in the
            *human-readable* profile report. Never read inside
            ``repro.obs`` itself (rule TL014) and never included in the
            deterministic ``profile.json`` export — wall times are the
            one explicitly non-deterministic diagnostic.
    """

    trace: bool = False
    metrics: bool = False
    profile: bool = False
    profile_top_n: int = 15
    wall_clock: Optional[Callable[[], float]] = None

    @property
    def enabled(self) -> bool:
        """Whether any observability feature is on."""
        return self.trace or self.metrics or self.profile

    @property
    def needs_kernel_observer(self) -> bool:
        """Tracing and profiling hook the kernel's event loop."""
        return self.trace or self.profile
