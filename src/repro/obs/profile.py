"""Lightweight per-event-label profiling.

For every executed kernel event the profiler accumulates, keyed by the
event's label:

* **count** — how many events fired under the label;
* **virtual scheduling delay** — ``fire_time - schedule_time`` total,
  maximum, and a fixed-bound histogram (how far ahead the component
  schedules itself, in virtual seconds);
* **wall time** — total callback wall time, *only* when an external
  clock was injected (``ObsConfig.wall_clock``; ``repro.obs`` itself
  never reads a clock — rule TL014).

The JSON export (:meth:`EventProfiler.to_json`) contains only the
deterministic fields, so ``profile.json`` is byte-identical across
serial and pooled runs; wall times appear only in the human-readable
top-N report (:func:`format_profile_report`).
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple

from repro.simkernel.event import Event

#: Upper bounds (virtual seconds, inclusive) of the scheduling-delay
#: histogram buckets; the last bucket is unbounded.
DELAY_BUCKET_BOUNDS: Tuple[int, ...] = (0, 1, 60, 300, 900, 3600, 14400, 86400)


class _LabelStats:
    """Accumulators for one event label."""

    __slots__ = ("count", "vdelay_total", "vdelay_max", "buckets",
                 "wall_total")

    def __init__(self) -> None:
        self.count = 0
        self.vdelay_total = 0
        self.vdelay_max = 0
        self.buckets = [0] * (len(DELAY_BUCKET_BOUNDS) + 1)
        self.wall_total = 0.0


class EventProfiler:
    """Accumulates per-label statistics as the kernel executes events."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock
        self._stats: Dict[str, _LabelStats] = {}
        self._active: Optional[Tuple[_LabelStats, float]] = None

    @property
    def has_wall_clock(self) -> bool:
        return self._clock is not None

    # ------------------------------------------------------------------

    def begin(self, event: Event, scheduled_at: int) -> None:
        """Record an event about to execute."""
        label = event.label
        stats = self._stats.get(label)
        if stats is None:
            stats = _LabelStats()
            self._stats[label] = stats
        stats.count += 1
        delay = event.time - scheduled_at
        stats.vdelay_total += delay
        if delay > stats.vdelay_max:
            stats.vdelay_max = delay
        stats.buckets[self._bucket(delay)] += 1
        started = self._clock() if self._clock is not None else 0.0
        self._active = (stats, started)

    def end(self, event: Event) -> None:
        """Record the event's callback having returned."""
        if self._active is None:
            return
        stats, started = self._active
        self._active = None
        if self._clock is not None:
            stats.wall_total += self._clock() - started

    @staticmethod
    def _bucket(delay: int) -> int:
        for index, bound in enumerate(DELAY_BUCKET_BOUNDS):
            if delay <= bound:
                return index
        return len(DELAY_BUCKET_BOUNDS)

    # ------------------------------------------------------------------

    def labels(self) -> List[str]:
        """Every observed label, sorted."""
        return sorted(self._stats)

    def to_json(self) -> str:
        """Deterministic JSON export (no wall times, sorted labels)."""
        payload = {}
        for label in self.labels():
            stats = self._stats[label]
            buckets = {}
            for index, bound in enumerate(DELAY_BUCKET_BOUNDS):
                buckets[f"le_{bound}"] = stats.buckets[index]
            buckets["inf"] = stats.buckets[-1]
            payload[label] = {
                "count": stats.count,
                "vdelay_total_s": stats.vdelay_total,
                "vdelay_max_s": stats.vdelay_max,
                "vdelay_buckets": buckets,
            }
        return json.dumps({"schema": 1, "labels": payload},
                          sort_keys=True, indent=2) + "\n"

    def format_report(self, top: int = 15) -> str:
        """Human-readable top-N table, busiest labels first.

        Wall-time columns appear only when a clock was injected; the
        table is diagnostic output, never part of the export contract.
        """
        ranked = sorted(self._stats.items(),
                        key=lambda item: (-item[1].count, item[0]))[:top]
        with_wall = self._clock is not None
        header = f"{'label':<40} {'count':>8} {'avg delay':>10}"
        if with_wall:
            header += f" {'wall ms':>10} {'ms/event':>9}"
        lines = [header, "-" * len(header)]
        for label, stats in ranked:
            avg = stats.vdelay_total / stats.count if stats.count else 0.0
            row = f"{label[:40]:<40} {stats.count:>8} {avg:>9.1f}s"
            if with_wall:
                wall_ms = stats.wall_total * 1e3
                row += (f" {wall_ms:>10.2f}"
                        f" {wall_ms / stats.count:>9.3f}")
            lines.append(row)
        return "\n".join(lines)


def format_profile_report(profile_json: str, top: int = 15) -> str:
    """Render the top-N table from an exported ``profile.json`` blob.

    Used when only the deterministic export survived (e.g. a result
    that crossed a process boundary); contains no wall times.
    """
    payload = json.loads(profile_json)
    ranked = sorted(payload["labels"].items(),
                    key=lambda item: (-item[1]["count"], item[0]))[:top]
    header = f"{'label':<40} {'count':>8} {'avg delay':>10} {'max':>8}"
    lines = [header, "-" * len(header)]
    for label, stats in ranked:
        count = stats["count"]
        avg = stats["vdelay_total_s"] / count if count else 0.0
        lines.append(f"{label[:40]:<40} {count:>8} {avg:>9.1f}s "
                     f"{stats['vdelay_max_s']:>7}s")
    return "\n".join(lines)
