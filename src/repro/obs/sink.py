"""Pluggable trace/metric record sinks.

A sink receives plain-dict records and owns their serialization. The
default :class:`ListSink` renders each record to one canonical JSON
line (sorted keys, compact separators) at emit time, so the final
artifact is a deterministic function of the emitted record sequence —
the property the serial-vs-pooled byte-identity contract rests on.
"""

from __future__ import annotations

import json
from typing import Dict, List, Protocol

#: One trace or metric record; values must be JSON-serializable.
Record = Dict[str, object]


def render_record(record: Record) -> str:
    """Canonical single-line JSON encoding of one record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class TraceSink(Protocol):
    """Anything that can accept a stream of records."""

    def emit(self, record: Record) -> None:
        """Consume one record."""
        ...


class ListSink:
    """Accumulates canonically-rendered JSONL lines in memory.

    In-memory accumulation (rather than streaming to a file handle) is
    what lets exports cross the :class:`~repro.parallel.executor.
    SweepExecutor` process boundary inside the pickled result: the
    parent process writes the files, workers never touch the disk.
    """

    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, record: Record) -> None:
        self.lines.append(render_record(record))

    def render(self) -> str:
        """The accumulated artifact: one record per line."""
        return "\n".join(self.lines) + ("\n" if self.lines else "")
