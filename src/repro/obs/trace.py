"""Span-based event tracing.

Every executed kernel event becomes one *span* record; chaos gate
decisions inside an event become zero-duration *mark* records parented
to the enclosing span. Parent links run from schedule site to fire
site: when event A's callback schedules event B, B's span records A's
span as its parent, so the JSONL reconstructs the causal tree of a run
(the same shape Ditto-style microservice clones validate per-tier
traces against).

Determinism contract (enforced by totolint rule TL014 and DetSan): the
tracer draws from no RNG stream, reads no wall clock, and schedules no
events — span ids are a plain counter, timestamps are virtual. A traced
run is byte-identical to itself across serial and pooled execution.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.sink import ListSink, TraceSink
from repro.simkernel.event import Event

#: Version stamp of the trace record schema (the ``meta`` line).
TRACE_SCHEMA_VERSION = 1


class SpanTracer:
    """Builds the span stream for one run.

    Record shapes (one JSON object per line):

    * ``{"type": "meta", "schema": 1}`` — first line.
    * ``{"type": "span", "id": N, "parent": P|null, "label": L,
      "seq": S, "t_sched": T0, "t_fire": T1}`` — one executed event;
      emitted when the event's callback returns, so child marks appear
      *before* their parent span (Chrome-trace "complete event" order).
    * ``{"type": "mark", "id": N, "parent": P|null, "label": L,
      "t": T}`` — an instant annotation inside the current span.
    """

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self._list_sink = ListSink() if sink is None else None
        self._sink: TraceSink = sink if sink is not None else self._list_sink
        self._sink.emit({"type": "meta", "schema": TRACE_SCHEMA_VERSION})
        self._next_id = 1
        self._open: Optional[tuple] = None
        self.spans_emitted = 0
        self.marks_emitted = 0

    # ------------------------------------------------------------------

    @property
    def current_span(self) -> Optional[int]:
        """Id of the span currently executing, if any."""
        return self._open[0] if self._open is not None else None

    def begin(self, event: Event, scheduled_at: int,
              parent: Optional[int]) -> None:
        """Open the span for ``event`` (its callback is about to run)."""
        span_id = self._next_id
        self._next_id += 1
        self._open = (span_id, scheduled_at, parent)

    def end(self, event: Event) -> None:
        """Close the current span and emit its record."""
        if self._open is None:
            return
        span_id, scheduled_at, parent = self._open
        self._open = None
        self._sink.emit({
            "type": "span",
            "id": span_id,
            "parent": parent,
            "label": event.label,
            "seq": event.sequence,
            "t_sched": scheduled_at,
            "t_fire": event.time,
        })
        self.spans_emitted += 1

    def mark(self, label: str, now: int) -> None:
        """Emit an instant record parented to the executing span."""
        mark_id = self._next_id
        self._next_id += 1
        self._sink.emit({
            "type": "mark",
            "id": mark_id,
            "parent": self.current_span,
            "label": label,
            "t": now,
        })
        self.marks_emitted += 1

    # ------------------------------------------------------------------

    def render(self) -> Optional[str]:
        """The JSONL artifact (None when a custom sink owns the bytes)."""
        if self._list_sink is None:
            return None
        return self._list_sink.render()
