"""Deterministic random-number streams.

The paper (§5.2) fixes determinism "by explicitly setting the seeds of
all the random objects used within the code": the Population Manager has
a single seed, every node's RgManager/Toto models get a unique seed via
the model XML, and the PLB has its own seed that — as in production —
is *not* pinned across repeated experiments unless requested.

:class:`RngRegistry` mirrors that scheme. A single root seed fans out to
named child streams through :class:`numpy.random.SeedSequence`, so the
stream for ``("node", 3, "disk")`` is stable no matter in which order
streams are created.

An optional *recorder* (the DetSan runtime sanitizer,
:mod:`repro.analysis.detsan`) can be attached at construction; every
stream acquisition and seed derivation is then reported to it and
generators are handed out through its recording proxy.  The recorder is
duck-typed (``acquire``/``acquire_seed``) so this module never imports
the analysis layer; with no recorder the only overhead is an ``is
None`` test.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple, Union, cast

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.analysis.detsan import DetSanRecorder

Token = Union[str, int]


@lru_cache(maxsize=4096)
def _hash_token(token: str) -> int:
    """Stable FNV-1a hash of a string token (PYTHONHASHSEED-free).

    Memoized: the same handful of component names ("rgmanager",
    metric names, ...) are re-hashed on every stream lookup otherwise.
    """
    acc = 0x811C9DC5
    for byte in token.encode("utf-8"):
        acc = ((acc ^ byte) * 0x01000193) & 0xFFFFFFFF
    return acc


def _spawn_key(tokens: Iterable[Token]) -> Tuple[int, ...]:
    """Map a name path to a deterministic integer spawn key.

    Strings are hashed with a stable FNV-1a so the key does not depend on
    ``PYTHONHASHSEED``; integers pass through.
    """
    return tuple(token & 0xFFFFFFFF if isinstance(token, int)
                 else _hash_token(token) for token in tokens)


class RngRegistry:
    """Factory for named, reproducible :class:`numpy.random.Generator`\\ s.

    >>> rng = RngRegistry(root_seed=42)
    >>> a = rng.stream("population-manager")
    >>> b = rng.stream("node", 0, "disk")
    >>> a is rng.stream("population-manager")
    True
    """

    def __init__(self, root_seed: int,
                 recorder: Optional["DetSanRecorder"] = None) -> None:
        self.root_seed = int(root_seed)
        self.recorder = recorder
        self._streams: Dict[Tuple[int, ...], np.random.Generator] = {}

    def stream(self, *name: Token) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        key = _spawn_key(name)
        generator = self._streams.get(key)
        if generator is None:
            seq = np.random.SeedSequence(entropy=self.root_seed,
                                         spawn_key=key)
            generator = np.random.Generator(np.random.PCG64(seq))
            self._streams[key] = generator
        if self.recorder is not None:
            # The proxy draws from the very same generator, so a
            # recorded run produces byte-identical results.
            return cast(np.random.Generator,
                        self.recorder.acquire(key, "stream", name,
                                              generator))
        return generator

    def derive_seed(self, *name: Token) -> int:
        """Return a stable 32-bit integer seed for ``name``.

        Used where a component (e.g. the model XML) carries a scalar seed
        rather than a generator.
        """
        seq = np.random.SeedSequence(entropy=self.root_seed,
                                     spawn_key=_spawn_key(name))
        seed = int(seq.generate_state(1, dtype=np.uint32)[0])
        if self.recorder is not None:
            self.recorder.acquire_seed("derive_seed", name, seed)
        return seed

    def fork(self, *name: Token) -> "RngRegistry":
        """Return a child registry rooted at a seed derived from ``name``.

        The child inherits the recorder, so a DetSan run sees draws
        from forked registries too.
        """
        return RngRegistry(self.derive_seed(*name), recorder=self.recorder)
