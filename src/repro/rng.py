"""Deterministic random-number streams.

The paper (§5.2) fixes determinism "by explicitly setting the seeds of
all the random objects used within the code": the Population Manager has
a single seed, every node's RgManager/Toto models get a unique seed via
the model XML, and the PLB has its own seed that — as in production —
is *not* pinned across repeated experiments unless requested.

:class:`RngRegistry` mirrors that scheme. A single root seed fans out to
named child streams through :class:`numpy.random.SeedSequence`, so the
stream for ``("node", 3, "disk")`` is stable no matter in which order
streams are created.

An optional *recorder* (the DetSan runtime sanitizer,
:mod:`repro.analysis.detsan`) can be attached at construction; every
stream acquisition and seed derivation is then reported to it and
generators are handed out through its recording proxy.  The recorder is
duck-typed (``acquire``/``acquire_seed``) so this module never imports
the analysis layer; with no recorder the only overhead is an ``is
None`` test.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, \
    Tuple, Union, cast

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.analysis.detsan import DetSanRecorder

Token = Union[str, int]


@lru_cache(maxsize=4096)
def _hash_token(token: str) -> int:
    """Stable FNV-1a hash of a string token (PYTHONHASHSEED-free).

    Memoized: the same handful of component names ("rgmanager",
    metric names, ...) are re-hashed on every stream lookup otherwise.
    """
    acc = 0x811C9DC5
    for byte in token.encode("utf-8"):
        acc = ((acc ^ byte) * 0x01000193) & 0xFFFFFFFF
    return acc


def _spawn_key(tokens: Iterable[Token]) -> Tuple[int, ...]:
    """Map a name path to a deterministic integer spawn key.

    Strings are hashed with a stable FNV-1a so the key does not depend on
    ``PYTHONHASHSEED``; integers pass through.
    """
    return tuple(token & 0xFFFFFFFF if isinstance(token, int)
                 else _hash_token(token) for token in tokens)


class RngRegistry:
    """Factory for named, reproducible :class:`numpy.random.Generator`\\ s.

    >>> rng = RngRegistry(root_seed=42)
    >>> a = rng.stream("population-manager")
    >>> b = rng.stream("node", 0, "disk")
    >>> a is rng.stream("population-manager")
    True
    """

    def __init__(self, root_seed: int,
                 recorder: Optional["DetSanRecorder"] = None) -> None:
        self.root_seed = int(root_seed)
        self.recorder = recorder
        self._streams: Dict[Tuple[int, ...], np.random.Generator] = {}

    def stream(self, *name: Token) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        key = _spawn_key(name)
        generator = self._streams.get(key)
        if generator is None:
            seq = np.random.SeedSequence(entropy=self.root_seed,
                                         spawn_key=key)
            generator = np.random.Generator(np.random.PCG64(seq))
            self._streams[key] = generator
        if self.recorder is not None:
            # The proxy draws from the very same generator, so a
            # recorded run produces byte-identical results.
            return cast(np.random.Generator,
                        self.recorder.acquire(key, "stream", name,
                                              generator))
        return generator

    def derive_seed(self, *name: Token) -> int:
        """Return a stable 32-bit integer seed for ``name``.

        Used where a component (e.g. the model XML) carries a scalar seed
        rather than a generator.
        """
        seq = np.random.SeedSequence(entropy=self.root_seed,
                                     spawn_key=_spawn_key(name))
        seed = int(seq.generate_state(1, dtype=np.uint32)[0])
        if self.recorder is not None:
            self.recorder.acquire_seed("derive_seed", name, seed)
        return seed

    def fork(self, *name: Token) -> "RngRegistry":
        """Return a child registry rooted at a seed derived from ``name``.

        The child inherits the recorder, so a DetSan run sees draws
        from forked registries too.
        """
        return RngRegistry(self.derive_seed(*name), recorder=self.recorder)

    def batched(self, *name: Token) -> "BatchedStream":
        """Batched façade over :meth:`stream` for the same substream.

        The returned :class:`BatchedStream` draws whole arrays in one
        numpy call while consuming the *same* substream — and the same
        bit-generator state — as the equivalent sequence of scalar
        draws, so a batched caller is byte-identical to a scalar one.
        Audited by totolint exactly like ``stream()`` (the name tokens
        are the substream key), and DetSan-recorded through the same
        generator proxy.
        """
        return BatchedStream(self.stream(*name))


#: When truthy, :class:`BatchedStream` degrades every batch to the
#: equivalent sequence of scalar draws. Useful to (a) run without fast
#: vectorized numpy paths and (b) A/B-verify that batching is
#: draw-for-draw identical (tests flip :data:`SCALAR_SAMPLING`).
SCALAR_SAMPLING = bool(os.environ.get("TOTO_SCALAR_SAMPLING"))


class BatchedStream:
    """Vectorized draw helper bound to one generator (one substream).

    Every method is defined to consume the underlying bit stream
    exactly as the scalar loop it replaces, so switching a call site
    between batched and scalar sampling never changes a run:

    * ``normals(mus, sigmas)`` == ``[normal(m, s) if s > 0 else m ...]``
      — cells with ``sigma == 0`` are returned as their mean *without
      consuming a draw*, matching the codebase-wide scalar convention.
    * ``integers(low, high, n)`` == ``[integers(low, high) ...]``.

    (numpy's ``Generator`` guarantees the array forms of ``normal`` /
    ``integers`` advance PCG64 state identically to element-wise
    calls; the property suite pins this.)
    """

    __slots__ = ("generator",)

    def __init__(self, generator: np.random.Generator) -> None:
        self.generator = generator

    def normals(self, mus: Sequence[float],
                sigmas: Sequence[float]) -> np.ndarray:
        """One masked array-parameter normal draw per ``sigma > 0`` cell."""
        mu_arr = np.asarray(mus, dtype=float)
        sigma_arr = np.asarray(sigmas, dtype=float)
        if SCALAR_SAMPLING:
            generator = self.generator
            return np.array(
                [float(generator.normal(mu, sigma)) if sigma > 0 else mu
                 for mu, sigma in zip(mu_arr, sigma_arr)], dtype=float)
        out = mu_arr.copy()
        mask = sigma_arr > 0
        if mask.all():
            return np.asarray(self.generator.normal(mu_arr, sigma_arr),
                              dtype=float)
        if mask.any():
            out[mask] = self.generator.normal(mu_arr[mask], sigma_arr[mask])
        return out

    def integers(self, low: int, high: int, n: int) -> np.ndarray:
        """``n`` draws of ``integers(low, high)`` in one call."""
        if SCALAR_SAMPLING:
            generator = self.generator
            return np.array([int(generator.integers(low, high))
                             for _ in range(n)], dtype=np.int64)
        return np.asarray(self.generator.integers(low, high, size=n),
                          dtype=np.int64)
