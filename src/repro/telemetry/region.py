"""Region profiles: the shape of a synthetic Azure region.

The paper trains its models on production telemetry from Azure regions
and notes strong regional differences (Figure 3a: "Region 2 has a
significantly larger proportion of local-store databases than Region
1"). A :class:`RegionProfile` captures the statistical features the
paper reports so the trace generator can emit training data with the
same structure:

* hourly/weekday seasonality of creates and drops (Figure 6): more
  activity on weekdays and during business hours;
* Premium/BC activity roughly an order of magnitude below Standard/GP;
* heavy-tailed initial data sizes;
* low CPU/memory utilization for most databases (Figure 3b);
* per-cluster local-store fractions (Figure 3a).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ScenarioError


@dataclass(frozen=True)
class RegionProfile:
    """Statistical profile of one synthetic region.

    Rates are *region level*; divide by ``tenant_ring_count`` for a
    single ring (paper §4.1.1's equal-probability assumption).
    """

    name: str
    tenant_ring_count: int = 15
    cluster_count: int = 40

    # -- create/drop seasonality (region-level events per hour) -------
    gp_create_base: float = 18.0          # overnight weekday floor
    gp_create_peak: float = 68.0          # business-hours bump height
    gp_drop_base: float = 16.5
    gp_drop_peak: float = 56.0
    bc_activity_scale: float = 0.115      # BC rates = GP rates x this
    weekend_factor: float = 0.45          # weekend dampening
    count_noise: float = 0.16             # relative sigma of hourly counts
    peak_hour: float = 13.0               # center of the business bump
    peak_width: float = 4.2               # bump width in hours

    # -- disk sizes at creation (log-GB) --------------------------------
    #: Remote-store traces track tempdb-scale local footprints; the
    #: *data* (billed) size rides the same distribution.
    gp_start_log_mu: float = 3.2
    gp_start_log_sigma: float = 1.1
    #: Local-store databases carry their full data on the node SSD and
    #: are an order of magnitude larger (§5.3.2: "A few Premium/BC
    #: databases contribute a disproportional amount of disk usage").
    bc_start_log_mu: float = 4.9
    bc_start_log_sigma: float = 0.8

    # -- disk growth (GB per 20-minute period, per database) ----------
    disk_delta_base: float = 0.004
    disk_delta_peak: float = 0.030
    disk_delta_sigma: float = 0.020
    #: Local-store databases grow faster (real data, not just tempdb).
    bc_disk_delta_multiplier: float = 1.8
    high_initial_probability: float = 0.02
    high_initial_log_mu: float = 3.6      # log-GB of 30-minute totals
    high_initial_log_sigma: float = 1.0
    high_initial_cap_gb: float = 256.0    # tempdb spill bursts stay modest
    bc_high_initial_cap_gb: float = 1400.0  # ~1.3 TB restores (§5.3.2)
    #: Local-store restores are far larger (full databases onto local
    #: SSD) and more frequent (restore-from-backup is the standard BC
    #: provisioning path); the paper's example grew ~1.3 TB in its
    #: first 30 minutes.
    bc_high_initial_probability: float = 0.15
    bc_high_initial_log_mu: float = 6.2
    bc_high_initial_log_sigma: float = 0.9
    rapid_probability: float = 0.015
    rapid_spike_log_mu: float = 3.0
    rapid_spike_log_sigma: float = 0.7
    #: BC batch pipelines move real data volumes, not tempdb scratch,
    #: and ETL-style local-store databases are common.
    bc_rapid_probability: float = 0.05
    bc_rapid_magnitude_multiplier: float = 12.0

    # -- utilization scatter (Figure 3b) --------------------------------
    cpu_util_alpha: float = 1.2           # beta params: mass near zero
    cpu_util_beta: float = 6.5
    mem_util_alpha: float = 2.4           # memory sits higher than CPU
    mem_util_beta: float = 3.2
    idle_fraction: float = 0.35           # completely idle databases

    # -- demographics ----------------------------------------------------
    local_store_fraction_mean: float = 0.15
    local_store_fraction_std: float = 0.05
    local_store_daily_jitter: float = 0.01

    def __post_init__(self) -> None:
        if self.tenant_ring_count < 1:
            raise ScenarioError("tenant_ring_count must be >= 1")
        if not 0.0 <= self.weekend_factor <= 1.0:
            raise ScenarioError("weekend_factor must be in [0, 1]")
        if not 0.0 <= self.local_store_fraction_mean <= 1.0:
            raise ScenarioError("local_store_fraction_mean out of range")

    # ------------------------------------------------------------------

    def _bump(self, hour: int) -> float:
        """Business-hours bump in [0, 1] centered at ``peak_hour``."""
        return math.exp(-((hour - self.peak_hour) / self.peak_width) ** 2)

    def create_rate(self, edition_is_bc: bool, weekend: bool,
                    hour: int) -> float:
        """Expected region-level creates in one hour."""
        rate = self.gp_create_base + self.gp_create_peak * self._bump(hour)
        if weekend:
            rate *= self.weekend_factor
        if edition_is_bc:
            rate *= self.bc_activity_scale
        return rate

    def drop_rate(self, edition_is_bc: bool, weekend: bool,
                  hour: int) -> float:
        """Expected region-level drops in one hour."""
        rate = self.gp_drop_base + self.gp_drop_peak * self._bump(hour)
        if weekend:
            rate *= self.weekend_factor
        if edition_is_bc:
            rate *= self.bc_activity_scale
        return rate

    def disk_delta_mu(self, weekend: bool, hour: int) -> float:
        """Expected per-database Delta Disk Usage for a 20-min period."""
        mu = self.disk_delta_base + self.disk_delta_peak * self._bump(hour)
        if weekend:
            mu *= self.weekend_factor
        return mu


#: The two regions of Figure 3a. US_EAST_LIKE has the low local-store
#: share ("Region 1"), EU_WEST_LIKE the high one ("Region 2").
US_EAST_LIKE = RegionProfile(name="region-1",
                             local_store_fraction_mean=0.12,
                             local_store_fraction_std=0.035)
EU_WEST_LIKE = RegionProfile(name="region-2",
                             local_store_fraction_mean=0.28,
                             local_store_fraction_std=0.06,
                             bc_activity_scale=0.22)
