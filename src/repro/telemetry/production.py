"""Synthetic production telemetry (the training corpus for §4).

The paper trains on two weeks of Azure telemetry we do not have; this
generator emits traces with the same reported structure so the
training pipeline (:mod:`repro.models`) runs unchanged:

* hourly create/drop event counts per edition over N days
  (Figures 6 and 8),
* per-database disk-usage time series at 20-minute granularity with
  the ~99.8% steady / ~0.2% special-pattern split (Figure 9 and
  §4.2.1),
* CPU/memory utilization snapshots of a region (Figure 3b),
* per-cluster daily local-store fractions (Figure 3a).

Every draw comes from the caller-provided seeded generator, so a trace
is a pure function of (profile, rng, horizon).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.sqldb.editions import Edition
from repro.telemetry.region import RegionProfile
from repro.units import DAY, DELTA_DISK_PERIOD, HOUR, MINUTE

#: 20-minute periods per hour / per day.
PERIODS_PER_HOUR = HOUR // DELTA_DISK_PERIOD
PERIODS_PER_DAY = DAY // DELTA_DISK_PERIOD


@dataclass(frozen=True)
class HourlyEventTrace:
    """Hourly event counts over a horizon, with calendar features."""

    edition: Edition
    kind: str                      # "create" | "drop"
    counts: Tuple[int, ...]        # one entry per hour
    start_weekday: int = 0

    def __post_init__(self) -> None:
        if len(self.counts) % 24 != 0:
            raise TrainingError(
                f"trace length {len(self.counts)} is not whole days")

    @property
    def n_hours(self) -> int:
        return len(self.counts)

    @property
    def n_days(self) -> int:
        return self.n_hours // 24

    def hour_of_day(self, index: int) -> int:
        return index % 24

    def is_weekend(self, index: int) -> bool:
        weekday = (self.start_weekday + index // 24) % 7
        return weekday >= 5

    def hourly_samples(self) -> Dict[Tuple[bool, int], List[int]]:
        """Group counts by (is_weekend, hour): the training sets of §4.1.

        Each group feeds one of the paper's 96 hourly models.
        """
        groups: Dict[Tuple[bool, int], List[int]] = {}
        for index, count in enumerate(self.counts):
            key = (self.is_weekend(index), self.hour_of_day(index))
            groups.setdefault(key, []).append(int(count))
        return groups

    def daily_totals(self) -> List[int]:
        """Total events per day."""
        return [int(sum(self.counts[d * 24:(d + 1) * 24]))
                for d in range(self.n_days)]


@dataclass(frozen=True)
class DiskUsageTrace:
    """One database's disk usage at 20-minute granularity."""

    db_index: int
    edition: Edition
    usage_gb: Tuple[float, ...]     # absolute usage per period
    pattern: str                    # "steady" | "initial" | "rapid"

    def deltas(self) -> np.ndarray:
        """Delta Disk Usage between adjacent periods (§4.2.1)."""
        usage = np.asarray(self.usage_gb, dtype=float)
        return np.diff(usage)


@dataclass(frozen=True)
class UtilizationSample:
    """One database's average CPU/memory utilization (Figure 3b)."""

    cpu_percent: float
    memory_percent: float
    idle: bool


class ProductionTraceGenerator:
    """Emits the synthetic production corpus for one region."""

    def __init__(self, profile: RegionProfile,
                 rng: np.random.Generator) -> None:
        self.profile = profile
        self._rng = rng

    # ------------------------------------------------------------------
    # Create/drop event traces (Figures 6 and 8)
    # ------------------------------------------------------------------

    def event_trace(self, edition: Edition, kind: str, days: int = 14,
                    start_weekday: int = 0) -> HourlyEventTrace:
        """Hourly event counts for one edition and kind over ``days``."""
        if kind not in ("create", "drop"):
            raise TrainingError(f"kind must be create|drop, got '{kind}'")
        if days < 1:
            raise TrainingError("need at least one day")
        is_bc = edition is Edition.PREMIUM_BC
        counts: List[int] = []
        for day in range(days):
            weekend = (start_weekday + day) % 7 >= 5
            for hour in range(24):
                if kind == "create":
                    rate = self.profile.create_rate(is_bc, weekend, hour)
                else:
                    rate = self.profile.drop_rate(is_bc, weekend, hour)
                noisy = self._rng.normal(
                    rate, max(self.profile.count_noise * rate, 0.4))
                counts.append(max(0, int(round(noisy))))
        return HourlyEventTrace(edition=edition, kind=kind,
                                counts=tuple(counts),
                                start_weekday=start_weekday)

    def create_and_drop_traces(self, days: int = 14, start_weekday: int = 0
                               ) -> Dict[Tuple[Edition, str],
                                         HourlyEventTrace]:
        """All four (edition, kind) traces in one call."""
        traces = {}
        for edition in Edition:
            for kind in ("create", "drop"):
                traces[(edition, kind)] = self.event_trace(
                    edition, kind, days, start_weekday)
        return traces

    # ------------------------------------------------------------------
    # Disk usage traces (Figure 9, §4.2)
    # ------------------------------------------------------------------

    def disk_trace(self, db_index: int, edition: Edition, days: int = 14,
                   start_weekday: int = 0,
                   pattern: str = "steady") -> DiskUsageTrace:
        """One database's 20-minute disk-usage series."""
        profile = self.profile
        n_periods = days * PERIODS_PER_DAY
        if edition is Edition.PREMIUM_BC:
            start_gb = float(np.clip(
                self._rng.lognormal(profile.bc_start_log_mu,
                                    profile.bc_start_log_sigma),
                1.0, 2048.0))
            delta_scale = profile.bc_disk_delta_multiplier
        else:
            start_gb = float(np.clip(
                self._rng.lognormal(profile.gp_start_log_mu,
                                    profile.gp_start_log_sigma),
                0.5, 2048.0))
            delta_scale = 1.0
        usage = np.empty(n_periods + 1)
        usage[0] = start_gb

        rapid_cycle = None
        if pattern == "rapid":
            rapid_cycle = self._sample_rapid_cycle(edition)
        initial_total = 0.0
        if pattern == "initial":
            # A database crossing the 12 GB-in-5-minutes rule sustains a
            # high rate; 30-minute totals land well above the threshold.
            # Local-store restores pull full databases onto local SSD
            # and are far larger than remote-store tempdb warm-ups.
            if edition is Edition.PREMIUM_BC:
                log_mu = profile.bc_high_initial_log_mu
                log_sigma = profile.bc_high_initial_log_sigma
                cap = profile.bc_high_initial_cap_gb
            else:
                log_mu = profile.high_initial_log_mu
                log_sigma = profile.high_initial_log_sigma
                cap = profile.high_initial_cap_gb
            initial_total = float(np.clip(
                self._rng.lognormal(log_mu, log_sigma), 30.0, cap))

        # Restores are front-loaded: 60% of the growth lands in the
        # first 20-minute period, the rest in the second.
        initial_shares = (0.6, 0.4)
        for period in range(n_periods):
            hour = (period // PERIODS_PER_HOUR) % 24
            weekend = (start_weekday + period // PERIODS_PER_DAY) % 7 >= 5
            mu = profile.disk_delta_mu(weekend, hour) * delta_scale
            delta = float(self._rng.normal(
                mu, profile.disk_delta_sigma * delta_scale))
            if pattern == "initial" and period < len(initial_shares):
                delta += initial_total * initial_shares[period]
            if rapid_cycle is not None:
                delta += self._rapid_delta(rapid_cycle, period)
            usage[period + 1] = max(usage[period] + delta, 0.1)
        return DiskUsageTrace(db_index=db_index, edition=edition,
                              usage_gb=tuple(float(x) for x in usage),
                              pattern=pattern)

    def disk_corpus(self, n_databases: int = 400, days: int = 14,
                    start_weekday: int = 0,
                    min_per_edition: int = 80) -> List[DiskUsageTrace]:
        """A population of disk traces with the paper's pattern split.

        Pattern assignment follows §4.2.1: the overwhelming majority is
        steady-state; small subsets show initial-creation or
        predictable-rapid growth. Editions and patterns are stratified
        (quota per (edition, pattern), at least two of each special
        pattern) so a training corpus always exercises every §4.2
        sub-model; trace *content* remains fully random.
        """
        bc_count = max(int(round(n_databases
                                 * self.profile.local_store_fraction_mean)),
                       min(min_per_edition, n_databases // 2))
        gp_count = n_databases - bc_count
        traces: List[DiskUsageTrace] = []
        db_index = 0
        for edition, count in ((Edition.STANDARD_GP, gp_count),
                               (Edition.PREMIUM_BC, bc_count)):
            if edition is Edition.PREMIUM_BC:
                initial_probability = self.profile.bc_high_initial_probability
                rapid_probability = self.profile.bc_rapid_probability
            else:
                initial_probability = self.profile.high_initial_probability
                rapid_probability = self.profile.rapid_probability
            n_initial = max(int(round(count * initial_probability)), 2)
            n_rapid = max(int(round(count * rapid_probability)), 2)
            patterns = (["initial"] * n_initial + ["rapid"] * n_rapid
                        + ["steady"] * max(count - n_initial - n_rapid, 0))
            # Shuffle so special traces are not clustered at the front.
            self._rng.shuffle(patterns)
            for pattern in patterns[:count]:
                traces.append(self.disk_trace(db_index, edition, days,
                                              start_weekday, pattern))
                db_index += 1
        return traces

    def _sample_rapid_cycle(self, edition: Edition) -> Dict[str, float]:
        """Durations (in periods) and magnitude of one ETL-like cycle."""
        magnitude = self._rng.lognormal(self.profile.rapid_spike_log_mu,
                                        self.profile.rapid_spike_log_sigma)
        cap = 512.0
        if edition is Edition.PREMIUM_BC:
            magnitude *= self.profile.bc_rapid_magnitude_multiplier
            cap = 1024.0
        return {
            "steady": float(self._rng.integers(18, 48)),
            "increase": float(self._rng.integers(2, 5)),
            "between": float(self._rng.integers(9, 24)),
            "decrease": float(self._rng.integers(2, 5)),
            "magnitude": float(np.clip(magnitude, 2.0, cap)),
        }

    @staticmethod
    def _rapid_delta(cycle: Dict[str, float], period: int) -> float:
        total = (cycle["steady"] + cycle["increase"] + cycle["between"]
                 + cycle["decrease"])
        offset = period % total
        if offset < cycle["steady"]:
            return 0.0
        offset -= cycle["steady"]
        if offset < cycle["increase"]:
            return cycle["magnitude"] / cycle["increase"]
        offset -= cycle["increase"]
        if offset < cycle["between"]:
            return 0.0
        return -cycle["magnitude"] / cycle["decrease"]

    # ------------------------------------------------------------------
    # Utilization snapshot (Figure 3b)
    # ------------------------------------------------------------------

    def utilization_snapshot(self, n_databases: int = 2000
                             ) -> List[UtilizationSample]:
        """Average CPU/memory utilization of a region's databases."""
        profile = self.profile
        samples: List[UtilizationSample] = []
        for _ in range(n_databases):
            idle = bool(self._rng.random() < profile.idle_fraction)
            if idle:
                samples.append(UtilizationSample(0.0, 0.0, True))
                continue
            cpu = 100.0 * float(self._rng.beta(profile.cpu_util_alpha,
                                               profile.cpu_util_beta))
            memory = 100.0 * float(self._rng.beta(profile.mem_util_alpha,
                                                  profile.mem_util_beta))
            samples.append(UtilizationSample(cpu, memory, False))
        return samples

    # ------------------------------------------------------------------
    # Demographics (Figure 3a)
    # ------------------------------------------------------------------

    def local_store_fractions(self, days: int = 7
                              ) -> Dict[int, List[float]]:
        """Per-day local-store fraction per cluster of the region.

        Returns ``{day: [fraction per cluster]}``, the data behind one
        region's box plots in Figure 3a.
        """
        profile = self.profile
        base = np.clip(
            self._rng.normal(profile.local_store_fraction_mean,
                             profile.local_store_fraction_std,
                             size=profile.cluster_count),
            0.0, 1.0)
        result: Dict[int, List[float]] = {}
        for day in range(days):
            jitter = self._rng.normal(0.0, profile.local_store_daily_jitter,
                                      size=profile.cluster_count)
            result[day] = [float(np.clip(b + j, 0.0, 1.0))
                           for b, j in zip(base, jitter)]
        return result
