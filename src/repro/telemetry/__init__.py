"""Telemetry: synthetic production traces and cluster KPI collection.

Two halves:

* :mod:`repro.telemetry.production` / :mod:`repro.telemetry.region` —
  the *synthetic production environment*: generators that emit
  two-week, region-level telemetry with the statistical features the
  paper reports (hourly/weekday creation seasonality, heavy-tailed
  disk sizes, low-utilization CPU/memory scatter, per-cluster
  local-store fractions). The model-training framework (§4) consumes
  these traces exactly as the paper consumed Azure telemetry.
* :mod:`repro.telemetry.collector` / :mod:`repro.telemetry.kpis` —
  the benchmark-side telemetry: hourly KPI frames collected from the
  simulated cluster during a Toto run (reserved cores, disk usage,
  redirects, failed-over cores), which the experiment drivers turn
  into the paper's figures.
"""

from repro.telemetry.collector import TelemetryCollector, TelemetryFrame
from repro.telemetry.kpis import FailoverKpis, RunKpis
from repro.telemetry.region import RegionProfile
from repro.telemetry.production import ProductionTraceGenerator

__all__ = [
    "FailoverKpis",
    "ProductionTraceGenerator",
    "RegionProfile",
    "RunKpis",
    "TelemetryCollector",
    "TelemetryFrame",
]
