"""KPI summaries derived from a benchmark run.

These are the quantities the paper's evaluation reports: reserved
cores and disk usage (Figure 11/12a), creation redirects (Figure 10),
failed-over cores split by edition (Figure 12b), and the inputs to the
adjusted-revenue calculation (Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.chaos.injector import ChaosKpis
from repro.errors import UnknownDatabaseError
from repro.fabric.failover import FailoverRecord
from repro.sqldb.control_plane import ControlPlane
from repro.sqldb.editions import Edition


@dataclass(frozen=True)
class FailoverKpis:
    """Aggregate failover impact over a run (Figure 12b)."""

    count: int
    total_cores_moved: float
    gp_cores_moved: float
    bc_cores_moved: float
    total_disk_moved_gb: float
    primary_moves: int
    total_downtime_seconds: float

    @classmethod
    def from_records(cls, records: List[FailoverRecord],
                     control_plane: ControlPlane) -> "FailoverKpis":
        """Aggregate the capacity failovers (make-room moves excluded).

        Figure 12(b) counts failovers forced by capacity violations;
        proactive make-room balancing is a different disturbance and is
        reported separately by the PLB stats.
        """
        records = [r for r in records if r.is_capacity_failover]
        gp_cores = 0.0
        bc_cores = 0.0
        disk = 0.0
        downtime = 0.0
        primaries = 0
        for record in records:
            try:
                edition = control_plane.database(record.service_id).edition
            except UnknownDatabaseError:
                # Failover records for databases the control plane never
                # registered (bootstrap artifacts) default to the
                # majority edition rather than aborting the KPI rollup.
                edition = Edition.STANDARD_GP
            if edition is Edition.PREMIUM_BC:
                bc_cores += record.cores_moved
            else:
                gp_cores += record.cores_moved
            disk += record.disk_moved_gb
            downtime += record.downtime_seconds
            if record.is_primary:
                primaries += 1
        return cls(count=len(records),
                   total_cores_moved=gp_cores + bc_cores,
                   gp_cores_moved=gp_cores, bc_cores_moved=bc_cores,
                   total_disk_moved_gb=disk, primary_moves=primaries,
                   total_downtime_seconds=downtime)


@dataclass(frozen=True)
class RunKpis:
    """Final-state KPIs of one benchmark run."""

    final_reserved_cores: float
    final_disk_gb: float
    core_utilization: float
    disk_utilization: float
    creation_redirects: int
    active_databases: int
    failovers: FailoverKpis
    #: Fault-injection counters; None for runs without a chaos profile.
    chaos: Optional[ChaosKpis] = None
