"""Hourly KPI collection from the simulated cluster.

"Each experiment was executed in real time and observed by collecting
telemetry from the cluster" (§5.2). The collector snapshots the
cluster every hour (each Figure 11 point "representing an hour") and
keeps cumulative counters for redirects and failed-over cores so the
experiment drivers can emit the paper's series directly.

Nodes undergoing a maintenance upgrade are excluded from a snapshot,
reproducing the telemetry outliers the paper calls out in Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import UnknownDatabaseError
from repro.fabric.metrics import CPU_CORES, DISK_GB
from repro.simkernel import PeriodicProcess, SimulationKernel
from repro.sqldb.editions import Edition
from repro.sqldb.tenant_ring import TenantRing
from repro.units import HOUR


@dataclass(frozen=True)
class TelemetryFrame:
    """One hourly snapshot of the ring."""

    time: int
    hour_index: int
    reserved_cores: float
    disk_gb: float
    core_utilization: float
    disk_utilization: float
    active_gp: int
    active_bc: int
    redirects_cumulative: int
    failover_count_cumulative: int
    failover_cores_cumulative: float
    failover_bc_cores_cumulative: float
    nodes_in_maintenance: int
    node_cores: Tuple[float, ...]
    node_disk_gb: Tuple[float, ...]
    #: Fault-injection counters (cumulative; 0 for chaos-free runs).
    faults_injected_cumulative: int = 0
    chaos_retries_cumulative: int = 0
    degraded_intervals_cumulative: int = 0

    @property
    def active_total(self) -> int:
        return self.active_gp + self.active_bc


class TelemetryCollector:
    """Collects one :class:`TelemetryFrame` per hour once started."""

    def __init__(self, kernel: SimulationKernel, ring: TenantRing,
                 interval: int = HOUR) -> None:
        self._kernel = kernel
        self._ring = ring
        self.frames: List[TelemetryFrame] = []  # totolint: fleet-scale
        self._start_time: Optional[int] = None
        self._process = PeriodicProcess(kernel, interval, self._snapshot,
                                        label="telemetry-collector")
        # Incremental failover rollup: ``cluster.failovers`` only ever
        # grows, so each snapshot folds the records appended since the
        # previous one into running totals instead of rescanning the
        # whole (multi-thousand-record, multi-day) list every hour.
        self._failover_cursor = 0
        self._failover_count = 0
        self._failover_cores = 0.0
        self._failover_bc_cores = 0.0
        self._frame_listeners: List[Callable[[TelemetryFrame], None]] = []

    def start(self) -> None:
        """Begin hourly snapshots; hour 0 is captured immediately.

        Idempotent: calling ``start()`` while already collecting is a
        no-op (no duplicate hour-0 frame, no second periodic process).
        After a ``stop()``, ``start()`` resumes collection but keeps
        the original start time, so ``hour_index`` stays anchored to
        the experiment's official start.
        """
        if self._process.running:
            return
        if self._start_time is None:
            self._start_time = self._kernel.now
        if not self.frames or self.frames[-1].time != self._kernel.now:
            self._snapshot(self._kernel.now)
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    def add_frame_listener(
            self, listener: Callable[[TelemetryFrame], None]) -> None:
        """Call ``listener`` with every frame as it is captured.

        Listeners ride the existing snapshot events — registering one
        schedules nothing and must not mutate simulation state (the
        observability layer uses this to sample metrics per hour).
        """
        self._frame_listeners.append(listener)

    def capture_final(self) -> None:
        """Take a closing snapshot (events exactly at the run's end
        time are not executed by the kernel, so the final hour would
        otherwise be missing from the series)."""
        now = self._kernel.now
        if not self.frames or self.frames[-1].time != now:
            self._snapshot(now)

    # ------------------------------------------------------------------

    def _snapshot(self, now: int) -> None:
        cluster = self._ring.cluster
        control_plane = self._ring.control_plane
        live_nodes = [n for n in cluster.nodes if not n.in_maintenance]
        maintenance_count = cluster.node_count - len(live_nodes)

        reserved = sum(n.load(CPU_CORES) for n in live_nodes)
        disk = sum(n.load(DISK_GB) for n in live_nodes)
        # Capacities are static after construction; the cluster memoizes
        # these totals, so the per-frame cost is a dict lookup.
        core_capacity = cluster.total_capacity(CPU_CORES)
        disk_capacity = cluster.total_capacity(DISK_GB)

        failovers = cluster.failovers
        for record in failovers[self._failover_cursor:]:
            if not record.is_capacity_failover:
                continue
            self._failover_count += 1
            self._failover_cores += record.cores_moved
            try:
                edition = control_plane.database(record.service_id).edition
            except UnknownDatabaseError:
                # Mirror FailoverKpis.from_records: records for databases
                # the control plane never registered (bootstrap
                # artifacts) default to the majority edition instead of
                # aborting the hourly snapshot.
                edition = Edition.STANDARD_GP
            if edition is Edition.PREMIUM_BC:
                self._failover_bc_cores += record.cores_moved
        self._failover_cursor = len(failovers)

        chaos = self._ring.chaos
        start = self._start_time if self._start_time is not None else now
        frame = TelemetryFrame(
            time=now,
            hour_index=(now - start) // HOUR,
            reserved_cores=reserved,
            disk_gb=disk,
            core_utilization=reserved / core_capacity,
            disk_utilization=disk / disk_capacity,
            active_gp=control_plane.active_count(Edition.STANDARD_GP),
            active_bc=control_plane.active_count(Edition.PREMIUM_BC),
            redirects_cumulative=control_plane.redirect_count(),
            failover_count_cumulative=self._failover_count,
            failover_cores_cumulative=self._failover_cores,
            failover_bc_cores_cumulative=self._failover_bc_cores,
            nodes_in_maintenance=maintenance_count,
            node_cores=tuple(n.load(CPU_CORES) for n in cluster.nodes),
            node_disk_gb=tuple(n.load(DISK_GB) for n in cluster.nodes),
            faults_injected_cumulative=(
                0 if chaos is None else chaos.telemetry.faults_injected),
            chaos_retries_cumulative=(
                0 if chaos is None else chaos.telemetry.retries),
            degraded_intervals_cumulative=(
                0 if chaos is None else chaos.telemetry.degraded_intervals),
        )
        self.frames.append(frame)
        for listener in self._frame_listeners:
            listener(frame)

    # ------------------------------------------------------------------

    @property
    def last(self) -> TelemetryFrame:
        if not self.frames:
            raise IndexError("no telemetry collected yet")
        return self.frames[-1]

    def series(self, attribute: str) -> List[float]:
        """Extract one attribute as a list across frames."""
        return [getattr(frame, attribute) for frame in self.frames]

    def first_hour_with_redirect(self) -> Optional[int]:
        """Hour index of the first creation redirect (Figure 10)."""
        for frame in self.frames:
            if frame.redirects_cumulative > 0:
                return frame.hour_index
        return None
