"""Statistics used by the modeling framework and the experiment analysis.

This package hosts:

* descriptive statistics (box-plot five-number summaries used by the
  paper's dispersion figures),
* dynamic time warping (used in §4.2.2 to compare candidate disk models),
* the Kolmogorov-Smirnov normality test (§4.1.3, Figure 7),
* the Wilcoxon signed-rank test (§5.3.4, Figure 13),
* distribution wrappers and maximum-likelihood fitting for the normal /
  uniform / Poisson / negative-binomial candidates the paper evaluated.
"""

from repro.stats.bootstrap import (
    BootstrapInterval,
    bootstrap_mean,
    bootstrap_mean_difference,
    bootstrap_paired_difference,
)
from repro.stats.descriptive import BoxplotStats, boxplot_stats, rmse
from repro.stats.distributions import (
    FittedDistribution,
    NegativeBinomialDistribution,
    NormalDistribution,
    PoissonDistribution,
    UniformDistribution,
)
from repro.stats.dtw import dtw_distance
from repro.stats.fitting import FitResult, fit_all_candidates, fit_best
from repro.stats.ks import ks_normality_test
from repro.stats.wilcoxon import wilcoxon_signed_rank

__all__ = [
    "BootstrapInterval",
    "BoxplotStats",
    "bootstrap_mean",
    "bootstrap_mean_difference",
    "bootstrap_paired_difference",
    "FitResult",
    "FittedDistribution",
    "NegativeBinomialDistribution",
    "NormalDistribution",
    "PoissonDistribution",
    "UniformDistribution",
    "boxplot_stats",
    "dtw_distance",
    "fit_all_candidates",
    "fit_best",
    "ks_normality_test",
    "rmse",
    "wilcoxon_signed_rank",
]
