"""Wilcoxon signed-rank test (paper §5.3.4, Figure 13).

Used to compare paired node-level metric readings between repeated
experiments; the paper found 5 of 6 pairwise comparisons insignificant
at alpha = 0.05, supporting that PLB non-determinism does not move the
headline KPIs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

from repro.errors import TrainingError

ALPHA = 0.05


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of a paired Wilcoxon signed-rank test."""

    statistic: float
    p_value: float
    n_pairs: int

    def significant(self, alpha: float = ALPHA) -> bool:
        """True when the "same distribution" null is rejected."""
        return self.p_value < alpha


def wilcoxon_signed_rank(sample_a: Sequence[float],
                         sample_b: Sequence[float]) -> WilcoxonResult:
    """Paired Wilcoxon signed-rank test between two equal-length samples.

    All-zero difference vectors (identical runs) are reported as
    maximally insignificant (p = 1.0) instead of erroring, since that is
    the strongest possible "same distribution" evidence.
    """
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if a.shape != b.shape:
        raise TrainingError(
            f"paired test needs equal lengths: {a.shape} vs {b.shape}")
    if a.size < 5:
        raise TrainingError(
            f"Wilcoxon test needs at least 5 pairs, got {a.size}")
    differences = a - b
    if np.all(differences == 0):
        return WilcoxonResult(statistic=0.0, p_value=1.0, n_pairs=int(a.size))
    statistic, p_value = sps.wilcoxon(a, b, zero_method="wilcox")
    return WilcoxonResult(statistic=float(statistic), p_value=float(p_value),
                          n_pairs=int(a.size))
