"""Model fitting and selection across the paper's candidate distributions.

The paper compares normal, uniform, Poisson and negative-binomial fits
for hourly create/drop counts (§4.1.3) and normal vs. uniform for the
rapid-growth magnitudes (§4.2.3). We rank candidates with AIC (lower is
better); the paper ultimately chose normal "because its simulation
results were most representative of our training dataset", and the
AIC ranking reproduces that choice on the synthetic traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Type

from repro.errors import TrainingError
from repro.stats.distributions import (
    FittedDistribution,
    NegativeBinomialDistribution,
    NormalDistribution,
    PoissonDistribution,
    UniformDistribution,
)

DEFAULT_CANDIDATES: Tuple[Type[FittedDistribution], ...] = (
    NormalDistribution,
    UniformDistribution,
    PoissonDistribution,
    NegativeBinomialDistribution,
)


@dataclass(frozen=True)
class FitResult:
    """One candidate's fit on a sample."""

    distribution: FittedDistribution
    log_likelihood: float
    aic: float

    @property
    def name(self) -> str:
        return self.distribution.name


def fit_all_candidates(
    sample: Sequence[float],
    candidates: Sequence[Type[FittedDistribution]] = DEFAULT_CANDIDATES,
) -> List[FitResult]:
    """Fit each candidate and return results sorted by AIC (best first).

    Candidates whose support cannot hold the sample (e.g. Poisson on
    negative deltas) are skipped rather than raising.
    """
    results: List[FitResult] = []
    for candidate in candidates:
        try:
            fitted = candidate.fit(sample)
            ll = fitted.log_likelihood(sample)
        except TrainingError:
            continue
        if ll == float("-inf"):
            continue
        aic = 2.0 * fitted.n_parameters - 2.0 * ll
        results.append(FitResult(distribution=fitted, log_likelihood=ll,
                                 aic=aic))
    if not results:
        raise TrainingError("no candidate distribution fits the sample")
    results.sort(key=lambda r: r.aic)
    return results


def fit_best(
    sample: Sequence[float],
    candidates: Sequence[Type[FittedDistribution]] = DEFAULT_CANDIDATES,
) -> FittedDistribution:
    """Return the AIC-best fitted distribution for ``sample``."""
    return fit_all_candidates(sample, candidates)[0].distribution


def fit_comparison_table(
    samples: Dict[str, Sequence[float]],
    candidates: Sequence[Type[FittedDistribution]] = DEFAULT_CANDIDATES,
) -> Dict[str, List[FitResult]]:
    """Fit every named sample; used by the model-selection ablation."""
    return {name: fit_all_candidates(sample, candidates)
            for name, sample in samples.items()}
