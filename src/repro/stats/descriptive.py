"""Descriptive statistics: box-plot summaries and error metrics.

The paper's demographic and non-determinism figures (3a, 6, 7, 13) are
dispersion box plots; :func:`boxplot_stats` produces the standard
Tukey five-number summary plus mean and outliers so the benchmarks can
print exactly the series those figures draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import TrainingError


@dataclass(frozen=True)
class BoxplotStats:
    """Tukey box-plot summary of one sample."""

    count: int
    mean: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: tuple

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1

    def row(self) -> str:
        """One-line rendering used by the report tables."""
        return (f"n={self.count:4d}  mean={self.mean:10.3f}  "
                f"min={self.minimum:10.3f}  q1={self.q1:10.3f}  "
                f"med={self.median:10.3f}  q3={self.q3:10.3f}  "
                f"max={self.maximum:10.3f}")


def boxplot_stats(sample: Sequence[float], whisker: float = 1.5) -> BoxplotStats:
    """Compute a Tukey box-plot summary.

    Whiskers extend to the most extreme data point within
    ``whisker * IQR`` of the nearer quartile; points beyond are outliers.
    """
    data = np.asarray(sample, dtype=float)
    if data.size == 0:
        raise TrainingError("cannot summarize an empty sample")
    q1, median, q3 = np.percentile(data, [25.0, 50.0, 75.0])
    iqr = q3 - q1
    low_fence = q1 - whisker * iqr
    high_fence = q3 + whisker * iqr
    inside = data[(data >= low_fence) & (data <= high_fence)]
    if inside.size:
        whisker_low = float(inside.min())
        whisker_high = float(inside.max())
    else:  # degenerate: every point is an "outlier"
        whisker_low = float(q1)
        whisker_high = float(q3)
    outliers = tuple(float(x) for x in
                     np.sort(data[(data < low_fence) | (data > high_fence)]))
    return BoxplotStats(
        count=int(data.size),
        mean=float(data.mean()),
        minimum=float(data.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(data.max()),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
    )


def rmse(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Root mean squared error between two equal-length series."""
    pred = np.asarray(predicted, dtype=float)
    act = np.asarray(actual, dtype=float)
    if pred.shape != act.shape:
        raise TrainingError(
            f"series length mismatch: {pred.shape} vs {act.shape}")
    if pred.size == 0:
        raise TrainingError("cannot compute RMSE of empty series")
    return float(np.sqrt(np.mean((pred - act) ** 2)))


def relative_difference(value: float, baseline: float) -> float:
    """``(value - baseline) / baseline`` guarded against zero baselines."""
    if baseline == 0:
        raise TrainingError("relative difference undefined for zero baseline")
    return (value - baseline) / baseline


def summarize_many(samples: List[Sequence[float]]) -> List[BoxplotStats]:
    """Box-plot summary per sample (one box per plotted group)."""
    return [boxplot_stats(sample) for sample in samples]
