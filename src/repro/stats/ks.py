"""Kolmogorov-Smirnov normality test (paper §4.1.3, Figure 7).

The paper runs a K-S test per hourly training set and cannot reject
normality at alpha = 0.05 for nearly every hour. Following the paper's
cited scipy implementation, we test the sample against a normal with
the sample's own mean and standard deviation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

from repro.errors import TrainingError

ALPHA = 0.05


@dataclass(frozen=True)
class KsTestResult:
    """Outcome of a single K-S normality test."""

    statistic: float
    p_value: float
    sample_size: int

    def rejects_normality(self, alpha: float = ALPHA) -> bool:
        """True when the null hypothesis of normality is rejected."""
        return self.p_value < alpha


def ks_normality_test(sample: Sequence[float]) -> KsTestResult:
    """Test ``sample`` against N(sample mean, sample std).

    Degenerate samples (fewer than 3 points or zero variance) cannot be
    tested and raise :class:`TrainingError`.
    """
    data = np.asarray(sample, dtype=float)
    if data.size < 3:
        raise TrainingError(
            f"K-S test needs at least 3 observations, got {data.size}")
    sigma = float(data.std(ddof=1))
    if sigma == 0.0:
        raise TrainingError("K-S test undefined for zero-variance sample")
    statistic, p_value = sps.kstest(data, "norm",
                                    args=(float(data.mean()), sigma))
    return KsTestResult(statistic=float(statistic), p_value=float(p_value),
                        sample_size=int(data.size))
