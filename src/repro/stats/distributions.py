"""Candidate probability distributions for the behaviour models.

Paper §4.1.3: "we fitted the hourly training dataset via various
probability distributions including normal, uniform, Poisson and
negative binomial". Each wrapper exposes a uniform interface —
``fit``, ``sample``, ``log_likelihood`` — so the fitting module can
compare candidates, and sampling takes an explicit generator so every
draw is attributable to a seeded stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

from repro.errors import TrainingError


def _as_array(sample: Sequence[float]) -> np.ndarray:
    data = np.asarray(sample, dtype=float)
    if data.size == 0:
        raise TrainingError("cannot fit a distribution to an empty sample")
    return data


@dataclass(frozen=True)
class FittedDistribution:
    """Base class for a fitted distribution (frozen parameters)."""

    name: str = "base"

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        raise NotImplementedError

    def sample_one(self, rng: np.random.Generator) -> float:
        """Draw a single value as a float."""
        return float(self.sample(rng, size=1)[0])

    def log_likelihood(self, sample: Sequence[float]) -> float:
        raise NotImplementedError

    @property
    def n_parameters(self) -> int:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class NormalDistribution(FittedDistribution):
    """Gaussian with MLE parameters; the paper's chosen building block."""

    mu: float = 0.0
    sigma: float = 1.0
    name: str = "normal"

    @classmethod
    def fit(cls, sample: Sequence[float]) -> "NormalDistribution":
        data = _as_array(sample)
        sigma = float(data.std())
        return cls(mu=float(data.mean()), sigma=sigma)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.normal(self.mu, self.sigma, size=size)

    def log_likelihood(self, sample: Sequence[float]) -> float:
        data = _as_array(sample)
        sigma = max(self.sigma, 1e-9)
        return float(np.sum(sps.norm.logpdf(data, loc=self.mu, scale=sigma)))

    @property
    def n_parameters(self) -> int:
        return 2

    def mean(self) -> float:
        return self.mu


@dataclass(frozen=True)
class UniformDistribution(FittedDistribution):
    """Uniform on [low, high]; used inside the rapid-growth bin models."""

    low: float = 0.0
    high: float = 1.0
    name: str = "uniform"

    @classmethod
    def fit(cls, sample: Sequence[float]) -> "UniformDistribution":
        data = _as_array(sample)
        low, high = float(data.min()), float(data.max())
        if low == high:  # widen degenerate support a hair
            high = low + 1e-9
        return cls(low=low, high=high)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size)

    def log_likelihood(self, sample: Sequence[float]) -> float:
        data = _as_array(sample)
        width = self.high - self.low
        inside = (data >= self.low) & (data <= self.high)
        if not inside.all():
            return float("-inf")
        return float(-data.size * np.log(width))

    @property
    def n_parameters(self) -> int:
        return 2

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class PoissonDistribution(FittedDistribution):
    """Poisson over non-negative integer counts."""

    lam: float = 1.0
    name: str = "poisson"

    @classmethod
    def fit(cls, sample: Sequence[float]) -> "PoissonDistribution":
        data = _as_array(sample)
        if (data < 0).any():
            raise TrainingError("Poisson requires non-negative counts")
        return cls(lam=max(float(data.mean()), 1e-9))

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.poisson(self.lam, size=size).astype(float)

    def log_likelihood(self, sample: Sequence[float]) -> float:
        data = np.round(_as_array(sample))
        if (data < 0).any():
            return float("-inf")
        return float(np.sum(sps.poisson.logpmf(data, mu=self.lam)))

    @property
    def n_parameters(self) -> int:
        return 1

    def mean(self) -> float:
        return self.lam


@dataclass(frozen=True)
class NegativeBinomialDistribution(FittedDistribution):
    """Negative binomial via method of moments (n successes, prob p)."""

    n: float = 1.0
    p: float = 0.5
    name: str = "negative-binomial"

    @classmethod
    def fit(cls, sample: Sequence[float]) -> "NegativeBinomialDistribution":
        data = _as_array(sample)
        if (data < 0).any():
            raise TrainingError("negative binomial requires non-negative counts")
        mean = float(data.mean())
        var = float(data.var())
        if var <= mean or mean <= 0:
            # No overdispersion: degenerate to a near-Poisson parameterization
            # with a large n, which the likelihood comparison will penalize.
            mean = max(mean, 1e-6)
            var = mean * 1.0001 + 1e-9
        p = mean / var
        n = mean * p / (1.0 - p)
        return cls(n=max(n, 1e-6), p=min(max(p, 1e-9), 1 - 1e-9))

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.negative_binomial(self.n, self.p, size=size).astype(float)

    def log_likelihood(self, sample: Sequence[float]) -> float:
        data = np.round(_as_array(sample))
        if (data < 0).any():
            return float("-inf")
        return float(np.sum(sps.nbinom.logpmf(data, self.n, self.p)))

    @property
    def n_parameters(self) -> int:
        return 2

    def mean(self) -> float:
        return self.n * (1.0 - self.p) / self.p
