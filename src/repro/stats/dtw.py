"""Dynamic time warping distance.

The paper (§4.2.2) selected the hourly-normal disk model because it had
"comparable or smaller dynamic time warping (DTW) and root mean squared
errors (RMSE) than KDE and the customized binning model". This module
implements classic DTW with an optional Sakoe-Chiba band so the
model-selection ablation can reproduce that comparison.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import TrainingError


def dtw_distance(series_a: Sequence[float], series_b: Sequence[float],
                 window: Optional[int] = None) -> float:
    """Return the DTW distance between two series.

    Args:
        series_a: first series.
        series_b: second series.
        window: optional Sakoe-Chiba band half-width; ``None`` means an
            unconstrained alignment.

    The local cost is the absolute difference; steps are the classic
    (match, insertion, deletion) triple.
    """
    a = np.asarray(series_a, dtype=float)
    b = np.asarray(series_b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise TrainingError("DTW requires non-empty series")
    n, m = a.size, b.size
    if window is None:
        window = max(n, m)
    window = max(int(window), abs(n - m))

    inf = float("inf")
    previous = np.full(m + 1, inf)
    previous[0] = 0.0
    current = np.full(m + 1, inf)
    for i in range(1, n + 1):
        current.fill(inf)
        j_start = max(1, i - window)
        j_end = min(m, i + window)
        for j in range(j_start, j_end + 1):
            cost = abs(a[i - 1] - b[j - 1])
            best_prev = min(previous[j], previous[j - 1], current[j - 1])
            current[j] = cost + best_prev
        previous, current = current, previous
    result = previous[m]
    if not np.isfinite(result):
        raise TrainingError(
            f"DTW window {window} admits no path for lengths {n} and {m}")
    return float(result)
