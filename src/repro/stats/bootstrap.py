"""Bootstrap confidence intervals for KPI comparisons.

The paper reasons about run-to-run differences with hypothesis tests
(Figure 13). When the question is instead "how big is the difference
and how sure are we?" — e.g. a config sweep's Δ adjusted revenue — a
percentile bootstrap over per-unit observations gives an interval
without distributional assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import TrainingError


@dataclass(frozen=True)
class BootstrapInterval:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    resamples: int

    @property
    def excludes_zero(self) -> bool:
        """True when the interval is strictly one-signed."""
        return self.low > 0.0 or self.high < 0.0

    def __str__(self) -> str:
        pct = int(round(self.confidence * 100))
        return (f"{self.estimate:.3f} "
                f"[{self.low:.3f}, {self.high:.3f}] @{pct}%")


def bootstrap_mean(sample: Sequence[float], confidence: float = 0.95,
                   resamples: int = 2000,
                   seed: int = 0) -> BootstrapInterval:
    """Percentile-bootstrap interval for a sample mean."""
    data = np.asarray(sample, dtype=float)
    if data.size < 2:
        raise TrainingError("bootstrap needs at least 2 observations")
    if not 0.0 < confidence < 1.0:
        raise TrainingError(f"confidence must be in (0,1), got {confidence}")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, data.size, size=(resamples, data.size))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return BootstrapInterval(estimate=float(data.mean()),
                             low=float(low), high=float(high),
                             confidence=confidence, resamples=resamples)


def bootstrap_mean_difference(sample_a: Sequence[float],
                              sample_b: Sequence[float],
                              confidence: float = 0.95,
                              resamples: int = 2000,
                              seed: int = 0) -> BootstrapInterval:
    """Interval for ``mean(a) - mean(b)`` (independent resampling)."""
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if a.size < 2 or b.size < 2:
        raise TrainingError("bootstrap needs at least 2 observations each")
    rng = np.random.default_rng(seed)
    means_a = a[rng.integers(0, a.size, size=(resamples, a.size))] \
        .mean(axis=1)
    means_b = b[rng.integers(0, b.size, size=(resamples, b.size))] \
        .mean(axis=1)
    deltas = means_a - means_b
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(deltas, [alpha, 1.0 - alpha])
    return BootstrapInterval(estimate=float(a.mean() - b.mean()),
                             low=float(low), high=float(high),
                             confidence=confidence, resamples=resamples)


def bootstrap_paired_difference(sample_a: Sequence[float],
                                sample_b: Sequence[float],
                                confidence: float = 0.95,
                                resamples: int = 2000,
                                seed: int = 0) -> BootstrapInterval:
    """Interval for the mean of paired differences ``a_i - b_i``.

    The right tool for node-level readings across two runs (Figure 13's
    pairing): resampling pairs preserves the per-node correlation.
    """
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if a.shape != b.shape:
        raise TrainingError("paired bootstrap needs equal lengths")
    return bootstrap_mean(a - b, confidence=confidence,
                          resamples=resamples, seed=seed)
