"""Deterministic retry / exponential-backoff machinery.

Real Toto components wrap their Naming Service and control-plane calls
in retry loops with jittered exponential backoff. In a discrete-event
simulation nothing may actually sleep — the kernel owns time — so this
module models a retry loop as a *virtual probe*: given the moment a
call fails and a predicate saying whether the fault is still active at
a later virtual timestamp, walk the backoff schedule forward in virtual
time and report whether any attempt would have landed outside the fault
window. The loop is bounded by ``max_retries`` (totolint rule TL009
forbids unbounded retry loops in this package) and the jitter comes
from a named RNG stream, so two runs of the same scenario draw the
same delays byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import FaultSpecError


@dataclass(frozen=True)
class BackoffPolicy:
    """Jittered exponential backoff: ``base * multiplier**attempt``.

    ``delay(attempt)`` is capped at ``max_delay`` and scaled by a
    jitter factor in ``[1 - jitter, 1 + jitter]`` drawn from the stream
    the caller provides — never from global RNG state.
    """

    base_delay: float = 2.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    max_retries: int = 5
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise FaultSpecError("base_delay must be > 0")
        if self.multiplier < 1.0:
            raise FaultSpecError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise FaultSpecError("max_delay must be >= base_delay")
        if self.max_retries < 0:
            raise FaultSpecError("max_retries must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise FaultSpecError("jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Jittered delay before retry number ``attempt`` (0-based)."""
        raw = min(self.base_delay * self.multiplier ** attempt,
                  self.max_delay)
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 + self.jitter * float(rng.uniform(-1.0, 1.0)))

    @property
    def max_wait(self) -> float:
        """Upper bound on total virtual seconds a retry loop can wait."""
        total = 0.0
        for attempt in range(self.max_retries):
            total += min(self.base_delay * self.multiplier ** attempt,
                         self.max_delay) * (1.0 + self.jitter)
        return total


@dataclass(frozen=True)
class RetryResult:
    """Outcome of walking one backoff schedule against a fault window."""

    succeeded: bool
    retries: int
    waited: float


def probe_through_backoff(policy: BackoffPolicy, now: float,
                          rng: np.random.Generator,
                          active_at: Callable[[float], bool]) -> RetryResult:
    """Walk the backoff schedule in virtual time until the fault clears.

    ``active_at(t)`` reports whether the fault still covers virtual
    timestamp ``t``. The first attempt happens at ``now`` (that is the
    call that just failed); each retry happens after the policy's next
    jittered delay. Returns how many retries were spent, how much
    virtual time they waited, and whether any attempt escaped the
    window before the budget ran out.
    """
    waited = 0.0
    for attempt in range(policy.max_retries):
        waited += policy.delay(attempt, rng)
        if not active_at(now + waited):
            return RetryResult(succeeded=True, retries=attempt + 1,
                               waited=waited)
    return RetryResult(succeeded=False, retries=policy.max_retries,
                       waited=waited)
