"""The fault injector: applies a :class:`FaultSchedule` to a live run.

The injector is wired between the kernel and the components it
disturbs. Fault *activations* (counters, node crashes, stale-view
snapshots) are kernel events scheduled at each fault's start; the
moment-to-moment effects are **stateless gate checks** against
precomputed absolute windows, so a component asking "is the Naming
Service reachable right now?" never mutates injector state and the
answer depends only on virtual time — the property that keeps chaos
runs byte-identical across serial, pooled, and fresh-interpreter
execution.

Retries never sleep: an injected transient failure is resolved by
walking the caller's jittered backoff schedule forward in *virtual*
time (:func:`repro.chaos.retry.probe_through_backoff`) and comparing
each attempt against the fault window. Jitter comes from the dedicated
``("chaos", "backoff-jitter")`` stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.chaos.faults import FaultKind, FaultSchedule, FaultSpec
from repro.chaos.retry import BackoffPolicy, RetryResult, probe_through_backoff
from repro.errors import ChaosError, NamingUnavailableError, RetryBudgetExceeded
from repro.fabric.naming import NamingFaultGate, _Entry
from repro.rng import RngRegistry
from repro.simkernel import SimulationKernel

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.population_manager import PopulationManager
    from repro.sqldb.tenant_ring import TenantRing

#: An absolute fault window: (start, end, target-node-or-None).
Window = Tuple[int, int, Optional[int]]


@dataclass
class ChaosTelemetry:
    """Cumulative fault-injection counters for one run."""

    faults_injected: int = 0
    probes: int = 0
    retries: int = 0
    degraded_intervals: int = 0
    naming_unavailable_errors: int = 0
    naming_stale_reads: int = 0
    rpc_reports_lost: int = 0
    rpc_reports_delayed: int = 0
    creates_timed_out: int = 0
    drops_deferred: int = 0
    pm_ticks_stalled: int = 0
    node_crashes_applied: int = 0
    node_restores: int = 0
    injected_by_kind: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> "ChaosKpis":
        """Freeze the counters into a picklable KPI record."""
        return ChaosKpis(
            faults_injected=self.faults_injected,
            probes=self.probes,
            retries=self.retries,
            degraded_intervals=self.degraded_intervals,
            naming_unavailable_errors=self.naming_unavailable_errors,
            naming_stale_reads=self.naming_stale_reads,
            rpc_reports_lost=self.rpc_reports_lost,
            rpc_reports_delayed=self.rpc_reports_delayed,
            creates_timed_out=self.creates_timed_out,
            drops_deferred=self.drops_deferred,
            pm_ticks_stalled=self.pm_ticks_stalled,
            node_crashes_applied=self.node_crashes_applied,
            node_restores=self.node_restores,
            injected_by_kind=tuple(sorted(self.injected_by_kind.items())),
        )


@dataclass(frozen=True)
class ChaosKpis:
    """Final fault-injection counters reported alongside the run KPIs."""

    faults_injected: int
    probes: int
    retries: int
    degraded_intervals: int
    naming_unavailable_errors: int
    naming_stale_reads: int
    rpc_reports_lost: int
    rpc_reports_delayed: int
    creates_timed_out: int
    drops_deferred: int
    pm_ticks_stalled: int
    node_crashes_applied: int
    node_restores: int
    injected_by_kind: Tuple[Tuple[str, int], ...]


class FaultInjector(NamingFaultGate):
    """Applies one :class:`FaultSchedule` to one benchmark run.

    Lifecycle: construct, :meth:`install` (wires the gates into the
    ring's components), :meth:`start` at the experiment's official
    start (fault offsets are relative to it), and :meth:`finish` after
    the run so final scoring reads an undisturbed metastore.
    """

    def __init__(self, kernel: SimulationKernel, ring: "TenantRing",
                 schedule: FaultSchedule, rng_registry: RngRegistry,
                 backoff: Optional[BackoffPolicy] = None,
                 population_manager: Optional["PopulationManager"] = None
                 ) -> None:
        self.kernel = kernel
        self.ring = ring
        self.schedule = schedule
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.population_manager = population_manager
        self.telemetry = ChaosTelemetry()
        self._jitter_rng = rng_registry.stream("chaos", "backoff-jitter")
        self._target_rng = rng_registry.stream("chaos", "target-pick")
        self._windows: Dict[FaultKind, List[Window]] = {
            kind: [] for kind in FaultKind}
        self._started = False
        self._finished = False
        self._stale_depth = 0
        self._stale_snapshot: Optional[Dict[str, _Entry]] = None
        self.chaos_start = 0
        #: Optional trace callback ``(label, now) -> None`` set by the
        #: observability session (docs/OBSERVABILITY.md). Called only at
        #: gate *decision* points (a fault actually bit), never on clean
        #: passes, so trace volume stays proportional to injected chaos.
        self.trace_hook: Optional[Callable[[str, int], None]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Wire the gates into the ring's components."""
        self.ring.chaos = self
        self.ring.control_plane.attach_chaos(self)
        self.ring.cluster.naming.fault_gate = self
        if self.population_manager is not None:
            self.population_manager.chaos = self

    def start(self) -> None:
        """Arm the schedule; fault offsets count from ``kernel.now``."""
        if self._started:
            raise ChaosError("fault injector already started")
        self._started = True
        self.chaos_start = self.kernel.now
        for spec in self.schedule.specs:
            start, end = spec.window(self.chaos_start)
            target = spec.target
            if spec.kind is FaultKind.NODE_CRASH and target is None:
                target = int(self._target_rng.integers(
                    self.ring.cluster.node_count))
            self._windows[spec.kind].append((start, end, target))
            self.kernel.schedule_oneshot(
                start, lambda s=spec, t=target, e=end: self._activate(s, t, e),
                label=f"chaos-{spec.kind.value}")

    def finish(self) -> None:
        """Disarm every gate so post-run scoring is undisturbed."""
        self._finished = True
        self._stale_depth = 0
        self._stale_snapshot = None

    @property
    def armed(self) -> bool:
        return self._started and not self._finished

    # ------------------------------------------------------------------
    # Activations (kernel events)
    # ------------------------------------------------------------------

    def _activate(self, spec: FaultSpec, target: Optional[int],
                  end: int) -> None:
        telemetry = self.telemetry
        telemetry.faults_injected += 1
        kind = spec.kind.value
        telemetry.injected_by_kind[kind] = \
            telemetry.injected_by_kind.get(kind, 0) + 1
        if spec.kind is FaultKind.NODE_CRASH and target is not None:
            self._crash_node(target, end)
        elif spec.kind is FaultKind.NAMING_STALE:
            self._enter_stale_window(end)

    def _crash_node(self, node_id: int, end: int) -> None:
        cluster = self.ring.cluster
        if not cluster.node(node_id).available:
            return  # already down from an overlapping crash
        cluster.fail_node(node_id, self.kernel.now)
        self.telemetry.node_crashes_applied += 1
        self.kernel.schedule_oneshot(
            end, lambda n=node_id: self._restore_node(n),
            label=f"chaos-restore-node-{node_id}")

    def _restore_node(self, node_id: int) -> None:
        cluster = self.ring.cluster
        if cluster.node(node_id).available:
            return
        cluster.restore_node(node_id)
        self.telemetry.node_restores += 1

    def _enter_stale_window(self, end: int) -> None:
        if self._stale_depth == 0:
            self._stale_snapshot = self.ring.cluster.naming.snapshot()
        self._stale_depth += 1
        self.kernel.schedule_oneshot(end, self._exit_stale_window,
                                     label="chaos-stale-window-end")

    def _exit_stale_window(self) -> None:
        self._stale_depth = max(self._stale_depth - 1, 0)
        if self._stale_depth == 0:
            self._stale_snapshot = None

    # ------------------------------------------------------------------
    # Window arithmetic (stateless)
    # ------------------------------------------------------------------

    def _covered(self, kind: FaultKind, when: float,
                 target: Optional[int] = None) -> bool:
        """Whether a ``kind`` window covers virtual time ``when``.

        A window with ``target=None`` applies to every node; a caller
        passing ``target=None`` matches any window of the kind.
        """
        for start, end, window_target in self._windows[kind]:
            if not start <= when < end:
                continue
            if window_target is None or target is None \
                    or window_target == target:
                return True
        return False

    def _probe(self, kind: FaultKind,
               target: Optional[int] = None) -> RetryResult:
        """Retry the failed call through backoff, in virtual time."""
        result = probe_through_backoff(
            self.backoff, self.kernel.now, self._jitter_rng,
            lambda t: self._covered(kind, t, target))
        self.telemetry.probes += 1
        self.telemetry.retries += result.retries
        return result

    def _mark(self, label: str) -> None:
        """Emit a trace mark at the current virtual time, if tracing."""
        if self.trace_hook is not None:
            self.trace_hook(label, self.kernel.now)

    # ------------------------------------------------------------------
    # Naming Service gate (NamingFaultGate protocol)
    # ------------------------------------------------------------------

    def on_read(self, key: str) -> None:
        self._naming_access(key, "read")

    def on_write(self, key: str) -> None:
        self._naming_access(key, "write")

    def _naming_access(self, key: str, verb: str) -> None:
        if not self.armed:
            return
        if not self._covered(FaultKind.NAMING_OUTAGE, self.kernel.now):
            return
        if self._probe(FaultKind.NAMING_OUTAGE).succeeded:
            return
        self.telemetry.naming_unavailable_errors += 1
        self.telemetry.degraded_intervals += 1
        self._mark(f"chaos-naming-unavailable:{verb}")
        raise NamingUnavailableError(
            f"naming {verb} of '{key}' exhausted its retry budget "
            "during an injected metastore outage")

    def stale_view(self) -> Optional[Dict[str, _Entry]]:
        if not self.armed or self._stale_snapshot is None:
            return None
        if not self._covered(FaultKind.NAMING_STALE, self.kernel.now):
            return None
        self.telemetry.naming_stale_reads += 1
        self._mark("chaos-stale-read")
        return self._stale_snapshot

    # ------------------------------------------------------------------
    # Control-plane gate
    # ------------------------------------------------------------------

    def control_plane_gate(self, op: str, now: int) -> None:
        """Gate one create/drop; raises when the outage outlasts retries."""
        if not self.armed:
            return
        if not self._covered(FaultKind.CONTROL_PLANE, now):
            return
        if self._probe(FaultKind.CONTROL_PLANE).succeeded:
            return
        if op == "create":
            self.telemetry.creates_timed_out += 1
        else:
            self.telemetry.drops_deferred += 1
        self.telemetry.degraded_intervals += 1
        self._mark(f"chaos-{op}-timeout")
        raise RetryBudgetExceeded(
            f"control-plane {op} at t={now} exhausted its retry budget "
            "during an injected transient outage")

    # ------------------------------------------------------------------
    # Metric-report RPC gate
    # ------------------------------------------------------------------

    def rpc_gate(self, node_id: int, now: int) -> bool:
        """Whether a metric-report RPC from ``node_id`` is delivered."""
        if not self.armed:
            return True
        if self._covered(FaultKind.RPC_LOSS, now, node_id):
            self.telemetry.rpc_reports_lost += 1
            self.telemetry.degraded_intervals += 1
            self._mark(f"chaos-rpc-lost:node-{node_id}")
            return False
        if self._covered(FaultKind.RPC_LATENCY, now, node_id):
            if self._probe(FaultKind.RPC_LATENCY, node_id).succeeded:
                self.telemetry.rpc_reports_delayed += 1
                self._mark(f"chaos-rpc-delayed:node-{node_id}")
                return True
            self.telemetry.rpc_reports_lost += 1
            self.telemetry.degraded_intervals += 1
            self._mark(f"chaos-rpc-lost:node-{node_id}")
            return False
        return True

    # ------------------------------------------------------------------
    # Population Manager gate
    # ------------------------------------------------------------------

    def population_gate(self, now: int) -> bool:
        """True when the Population Manager's tick should be skipped."""
        if not self.armed:
            return False
        if self._covered(FaultKind.PM_STALL, now):
            self.telemetry.pm_ticks_stalled += 1
            self.telemetry.degraded_intervals += 1
            self._mark("chaos-pm-stalled")
            return True
        return False
