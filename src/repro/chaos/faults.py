"""Fault taxonomy, fault schedules, and chaos profiles.

The paper validates Toto under real operational noise: nodes fail and
their replicas are rebuilt elsewhere ("intermittent failures that also
happen in production", §5.2), stateless metric models reset on
failover while persisted local-store state is resumed by a newly
promoted primary (§3.1/§3.3.2), and every component re-reads the
Naming Service on a fixed cadence and must survive it being slow or
stale. This module declares those disturbances *declaratively* so a
benchmark scenario can carry a fault plan the same way it carries a
model document — picklable, validated, and reproducible.

Two layers:

* :class:`FaultSpec` / :class:`FaultSchedule` — concrete fault
  instances pinned to offsets relative to the experiment's official
  start. Tests and incident replays write these by hand.
* :class:`ChaosConfig` — a statistical profile ("two node crashes and
  one naming outage over the run") that :meth:`ChaosConfig.materialize`
  expands into a concrete schedule using **named RNG substreams**, so
  an identical scenario produces a byte-identical schedule in any
  process (the determinism contract docs/CHAOS.md spells out).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.retry import BackoffPolicy
from repro.errors import FaultSpecError
from repro.rng import RngRegistry
from repro.units import MINUTE


class FaultKind(enum.Enum):
    """Every disturbance the injector knows how to apply."""

    #: A node goes down; its replicas are rebuilt elsewhere and the
    #: node returns empty after ``duration`` (paper §5.2 failures).
    NODE_CRASH = "node-crash"
    #: The Naming Service rejects reads/writes for the window; callers
    #: retry with backoff, then degrade to last-known-good state.
    NAMING_OUTAGE = "naming-outage"
    #: The Naming Service serves reads from a snapshot taken at window
    #: start — the stale-read window every 15-minute refresher must
    #: tolerate (§3.3.1).
    NAMING_STALE = "naming-stale"
    #: Metric-report RPCs from the targeted node (or all nodes) are
    #: dropped; the replica simply misses report sweeps.
    RPC_LOSS = "rpc-loss"
    #: Metric-report RPCs succeed only after a timeout + retry.
    RPC_LATENCY = "rpc-latency"
    #: Control-plane create/drop calls fail transiently for the window.
    CONTROL_PLANE = "control-plane"
    #: The Population Manager's hourly tick is stalled (daemon wedged).
    PM_STALL = "pm-stall"


#: Kinds whose ``target`` selects a node id (``None`` = injector picks
#: or, for RPC faults, "every node").
NODE_TARGETED_KINDS = frozenset({FaultKind.NODE_CRASH, FaultKind.RPC_LOSS,
                                 FaultKind.RPC_LATENCY})


@dataclass(frozen=True)
class FaultSpec:
    """One concrete fault instance.

    Attributes:
        kind: what to inject.
        at: seconds after the experiment's official start.
        duration: seconds the fault stays active (> 0).
        target: node id for node-targeted kinds; ``None`` lets the
            injector pick deterministically (node crashes) or applies
            the fault cluster-wide (RPC faults).
    """

    kind: FaultKind
    at: int
    duration: int
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultSpecError(f"fault offset must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise FaultSpecError(
                f"fault duration must be > 0, got {self.duration}")
        if self.target is not None and self.target < 0:
            raise FaultSpecError(f"fault target must be >= 0, got {self.target}")
        if self.target is not None and self.kind not in NODE_TARGETED_KINDS:
            raise FaultSpecError(
                f"{self.kind.value} faults take no node target")

    def window(self, start: int) -> Tuple[int, int]:
        """Absolute half-open active window given the chaos start time."""
        return (start + self.at, start + self.at + self.duration)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, validated collection of fault instances."""

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(
            self.specs,
            key=lambda s: (s.at, s.kind.value,
                           -1 if s.target is None else s.target,
                           s.duration)))
        object.__setattr__(self, "specs", ordered)

    def __len__(self) -> int:
        return len(self.specs)

    def by_kind(self, kind: FaultKind) -> Tuple[FaultSpec, ...]:
        """The schedule's specs of one kind, in firing order."""
        return tuple(spec for spec in self.specs if spec.kind is kind)

    def counts(self) -> Dict[str, int]:
        """Spec count per fault kind (stable ordering, for reports)."""
        tally: Dict[str, int] = {}
        for spec in self.specs:
            tally[spec.kind.value] = tally.get(spec.kind.value, 0) + 1
        return dict(sorted(tally.items()))


@dataclass(frozen=True)
class ChaosConfig:
    """A statistical chaos profile attached to a benchmark scenario.

    Counts are totals over the run; each fault's start offset is drawn
    uniformly over the run from a named substream of the scenario's
    root seed, so the materialized schedule — and therefore the whole
    run — is byte-identical across processes and across serial vs.
    parallel sweep execution.
    """

    profile: str = "custom"
    node_crashes: int = 0
    node_crash_duration: int = 30 * MINUTE
    naming_outages: int = 0
    naming_outage_duration: int = 10 * MINUTE
    naming_stale_windows: int = 0
    naming_stale_duration: int = 20 * MINUTE
    rpc_loss_windows: int = 0
    rpc_loss_duration: int = 10 * MINUTE
    rpc_latency_windows: int = 0
    rpc_latency_duration: int = 15 * MINUTE
    control_plane_outages: int = 0
    control_plane_outage_duration: int = 8 * MINUTE
    pm_stalls: int = 0
    pm_stall_duration: int = 90 * MINUTE
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    #: Hand-written faults appended to the generated ones (incident
    #: replay style: "crash node 3 at hour 30").
    extra_specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        for name in ("node_crashes", "naming_outages", "naming_stale_windows",
                     "rpc_loss_windows", "rpc_latency_windows",
                     "control_plane_outages", "pm_stalls"):
            if getattr(self, name) < 0:
                raise FaultSpecError(f"{name} must be >= 0")

    @property
    def total_faults(self) -> int:
        return (self.node_crashes + self.naming_outages
                + self.naming_stale_windows + self.rpc_loss_windows
                + self.rpc_latency_windows + self.control_plane_outages
                + self.pm_stalls + len(self.extra_specs))

    def materialize(self, duration: int, node_count: int,
                    rng_registry: RngRegistry) -> FaultSchedule:
        """Expand the profile into a concrete :class:`FaultSchedule`.

        Every fault kind draws from its own named substream
        (``("chaos", <kind>)``), so adding crashes to a profile never
        perturbs when its naming outages land.
        """
        if duration <= 0:
            raise FaultSpecError(f"run duration must be > 0, got {duration}")
        if node_count <= 0:
            raise FaultSpecError(f"node_count must be > 0, got {node_count}")
        specs: List[FaultSpec] = list(self.extra_specs)
        plan = (
            (FaultKind.NODE_CRASH, self.node_crashes,
             self.node_crash_duration),
            (FaultKind.NAMING_OUTAGE, self.naming_outages,
             self.naming_outage_duration),
            (FaultKind.NAMING_STALE, self.naming_stale_windows,
             self.naming_stale_duration),
            (FaultKind.RPC_LOSS, self.rpc_loss_windows,
             self.rpc_loss_duration),
            (FaultKind.RPC_LATENCY, self.rpc_latency_windows,
             self.rpc_latency_duration),
            (FaultKind.CONTROL_PLANE, self.control_plane_outages,
             self.control_plane_outage_duration),
            (FaultKind.PM_STALL, self.pm_stalls, self.pm_stall_duration),
        )
        for kind, count, fault_duration in plan:
            if count <= 0:
                continue
            stream = rng_registry.stream("chaos", kind.value)  # totolint: substream=chaos/*
            horizon = max(duration - fault_duration, 1)
            for _ in range(count):
                at = int(stream.integers(0, horizon))
                target: Optional[int] = None
                if kind is FaultKind.NODE_CRASH:
                    target = int(stream.integers(node_count))
                specs.append(FaultSpec(kind=kind, at=at,
                                       duration=fault_duration,
                                       target=target))
        return FaultSchedule(specs=tuple(specs))
