"""Deterministic fault injection for the Toto reproduction.

See docs/CHAOS.md for the fault taxonomy, the profile format, and the
determinism contract this package upholds.
"""

from repro.chaos.faults import (
    ChaosConfig,
    FaultKind,
    FaultSchedule,
    FaultSpec,
)
from repro.chaos.injector import ChaosKpis, ChaosTelemetry, FaultInjector
from repro.chaos.retry import BackoffPolicy, RetryResult, probe_through_backoff

__all__ = [
    "BackoffPolicy",
    "ChaosConfig",
    "ChaosKpis",
    "ChaosTelemetry",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "RetryResult",
    "probe_through_backoff",
]
