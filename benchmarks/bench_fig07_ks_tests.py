"""Figure 7 — K-S normality p-values of the hourly training sets.

The paper could not reject normality (alpha = 0.05) for nearly every
hourly training set — the justification for the "hourly normal"
model family.
"""

from benchmarks.conftest import emit


def test_fig07_ks_normality(benchmark, validation_study):
    p_values = benchmark(validation_study.figure7_pvalues)
    rejection_rate = validation_study.figure7_rejection_rate()

    lines = []
    for (edition, kind, daytype), values in p_values.items():
        if values:
            passing = sum(1 for p in values if p > 0.05)
            lines.append(f"{edition.short_name} {kind:>6} {daytype:>7}: "
                         f"{passing}/{len(values)} hours pass, "
                         f"min p={min(values):.3f}")
    emit("Figure 7 — K-S normality screening "
         f"(overall rejection rate {rejection_rate:.1%})",
         "\n".join(lines))

    # The vast majority of hourly sets must be consistent with
    # normality, as in the paper.
    assert rejection_rate < 0.20
    # Every (edition, kind, daytype) panel produced p-values.
    assert len(p_values) == 8
    assert all(values for values in p_values.values())

    benchmark.extra_info["rejection_rate"] = round(rejection_rate, 4)
