"""Figure 14 — total modeled adjusted revenue per density level.

Paper: "The modeled adjusted revenue for every experiment increases
until 140%, where there is a noticeable decrease. The penalty applied
to the 140% experiment is more than 60x larger than the other
experiments."

On the synthetic substrate the penalty ratio is smaller (order 10x,
see EXPERIMENTS.md) but the decisive shape holds: revenue rises
through 120% and falls at 140% because SLA credits outgrow the gain.
"""

from benchmarks.conftest import emit


def test_fig14_adjusted_revenue(benchmark, density_study):
    rows = benchmark(density_study.figure14_rows)
    emit("Figure 14 — total modeled adjusted revenue",
         density_study.format_figure14())

    by_pct = {row["density_pct"]: row for row in rows}
    # Adjusted revenue increases until 120%...
    assert by_pct[110]["adjusted"] > by_pct[100]["adjusted"]
    assert by_pct[120]["adjusted"] > by_pct[110]["adjusted"]
    # ...and decreases at 140%.
    assert by_pct[140]["adjusted"] < by_pct[120]["adjusted"]
    # The 140% penalty dwarfs every other experiment's.
    assert by_pct[140]["penalty"] > 2.0 * max(
        by_pct[pct]["penalty"] for pct in (100, 110, 120))
    assert by_pct[140]["penalty"] > 5.0 * by_pct[100]["penalty"]

    benchmark.extra_info["adjusted"] = {
        pct: round(by_pct[pct]["adjusted"]) for pct in by_pct}
    benchmark.extra_info["penalty"] = {
        pct: round(by_pct[pct]["penalty"]) for pct in by_pct}
