"""Figure 2 — the density-study summary scatter.

Paper: relative difference in final CPU reservation level (y) vs
relative customer capacity moved due to failovers (x), with circle
size showing relative "adjusted" revenue, for 110/120/140% vs 100%.

Expected shape: CPU reservation rises with density; capacity moved
explodes at 140%; adjusted revenue peaks at 120% and falls at 140%.
"""

from benchmarks.conftest import emit


def test_fig02_density_summary(benchmark, density_study):
    rows = benchmark(density_study.figure2_rows)
    emit("Figure 2 — density vs QoS vs adjusted revenue",
         density_study.format_figure2())

    by_pct = {row["density_pct"]: row for row in rows}
    # CPU reservation level increases with density over the baseline.
    assert by_pct[110]["rel_cpu_reservation"] > 0
    assert by_pct[140]["rel_cpu_reservation"] > \
        by_pct[110]["rel_cpu_reservation"]
    # 140% moves the most customer capacity.
    assert by_pct[140]["rel_capacity_moved"] >= \
        max(by_pct[110]["rel_capacity_moved"],
            by_pct[120]["rel_capacity_moved"])
    # Adjusted revenue at 140% is below 120% (the paper's takeaway).
    assert by_pct[140]["rel_adjusted_revenue"] < \
        by_pct[120]["rel_adjusted_revenue"]

    benchmark.extra_info["rows"] = {
        pct: {key: round(value, 4) for key, value in row.items()
              if key != "density_pct"}
        for pct, row in by_pct.items()}
