"""Figure 6 — dispersion of creates per hour-of-day.

Four panels: Standard/GP weekday/weekend (a, b) and Premium/BC
weekday/weekend (c, d). Expected features (§4.1.2): hourly patterns,
more activity on weekdays, and Premium/BC far below Standard/GP.
"""

import numpy as np

from repro.sqldb.editions import Edition
from benchmarks.conftest import emit


def test_fig06_creates_per_hour(benchmark, demographics_study):
    panels = benchmark(demographics_study.figure6_boxes, 14)
    lines = []
    for (edition, daytype), boxes in panels.items():
        medians = " ".join(f"{box.median:5.1f}" for box in boxes)
        lines.append(f"{edition.short_name:>2} {daytype:>7}: {medians}")
    emit("Figure 6 — median creates per hour-of-day", "\n".join(lines))

    def daily_median(edition, daytype):
        return sum(box.median
                   for box in panels[(edition, daytype)])

    # (1) hourly pattern: business hours well above night.
    gp_weekday = panels[(Edition.STANDARD_GP, "weekday")]
    assert gp_weekday[13].median > 2 * gp_weekday[3].median
    # (2) weekdays busier than weekends for both editions.
    assert daily_median(Edition.STANDARD_GP, "weekday") > \
        daily_median(Edition.STANDARD_GP, "weekend")
    assert daily_median(Edition.PREMIUM_BC, "weekday") > \
        daily_median(Edition.PREMIUM_BC, "weekend")
    # (3) BC has significantly fewer creates across all hours.
    assert daily_median(Edition.PREMIUM_BC, "weekday") < \
        0.4 * daily_median(Edition.STANDARD_GP, "weekday")

    benchmark.extra_info["gp_weekday_daily"] = round(
        daily_median(Edition.STANDARD_GP, "weekday"), 1)
    benchmark.extra_info["bc_weekday_daily"] = round(
        daily_median(Edition.PREMIUM_BC, "weekday"), 1)
