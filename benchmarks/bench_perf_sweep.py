"""Sweep-parallelism benchmark: wall-clock and determinism.

Runs the paper's 4-density sweep twice — serial (``max_workers=1``)
and fanned out over a process pool — asserts the results are
byte-identical, and records the wall-clock speedup. On a multi-core
machine the parallel sweep approaches Nx; on a single core it degrades
gracefully (pool overhead only), which is also worth recording.

``TOTO_PERF_DAYS`` (default 0.5) trims the per-run length so the
benchmark stays usable while iterating; ``benchmarks/emit_bench.py``
runs the full configuration for the recorded trajectory.
"""

import os
import pickle
import time

from repro.experiments.scenarios import paper_scenario
from repro.parallel import SweepExecutor

PERF_DAYS = float(os.environ.get("TOTO_PERF_DAYS", "0.5"))
PERF_WORKERS = int(os.environ.get("TOTO_PERF_WORKERS", "4"))
DENSITIES = (1.0, 1.1, 1.2, 1.4)


def sweep_scenarios():
    return [paper_scenario(density=density, days=PERF_DAYS, seed=42,
                           maintenance=True)
            for density in DENSITIES]


def timed_sweep(max_workers):
    executor = SweepExecutor(max_workers=max_workers)
    start = time.perf_counter()
    results = executor.run(sweep_scenarios())
    elapsed = time.perf_counter() - start
    return results, elapsed, executor.last_mode


def test_perf_sweep_parallel_speedup(benchmark):
    serial_results, serial_seconds, _ = timed_sweep(max_workers=1)

    def parallel_sweep():
        return timed_sweep(max_workers=PERF_WORKERS)

    parallel_results, parallel_seconds, mode = benchmark.pedantic(
        parallel_sweep, rounds=1, iterations=1)

    # Parallelism must be invisible in the results.
    assert len(parallel_results) == len(serial_results)
    for serial, parallel in zip(serial_results, parallel_results):
        assert serial.kpis == parallel.kpis
        assert serial.frames == parallel.frames
        assert pickle.dumps(serial.kpis) == pickle.dumps(parallel.kpis)

    speedup = serial_seconds / parallel_seconds
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 2)
    benchmark.extra_info["parallel_seconds"] = round(parallel_seconds, 2)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["cpu_count"] = os.cpu_count()

    # On a multi-core box the sweep must actually get faster; a
    # single-core box only has to stay within pool overhead.
    if mode == "parallel" and (os.cpu_count() or 1) >= 4:
        assert speedup >= 1.5
    else:
        assert speedup > 0.5
