"""Shared fixtures for the figure/table benchmarks.

The expensive artifacts — the four 6-day density runs (§5.2), the
three 18-hour repeatability runs (§5.3.4), and the trained/validated
models (§4) — are session-scoped so every figure benchmark reads from
one sweep, exactly as the paper derives all of Figures 2/10/11/12/14
from the same four experiments.

Set ``TOTO_BENCH_DAYS`` (default 6) to shorten the density runs while
iterating; the crossover behaviours need 3+ days to appear.
"""

import os

import pytest

from repro.experiments.demographics import DemographicsStudy
from repro.experiments.density import DensityStudy
from repro.experiments.model_validation import ModelValidationStudy
from repro.experiments.nondeterminism import NondeterminismStudy

BENCH_DAYS = float(os.environ.get("TOTO_BENCH_DAYS", "6"))
BENCH_SEED = int(os.environ.get("TOTO_BENCH_SEED", "42"))


@pytest.fixture(scope="session")
def density_study() -> DensityStudy:
    study = DensityStudy(days=BENCH_DAYS, seed=BENCH_SEED,
                         maintenance=True)
    study.run()
    return study


@pytest.fixture(scope="session")
def validation_study() -> ModelValidationStudy:
    return ModelValidationStudy()


@pytest.fixture(scope="session")
def demographics_study() -> DemographicsStudy:
    return DemographicsStudy(seed=7)


@pytest.fixture(scope="session")
def nondeterminism_study() -> NondeterminismStudy:
    study = NondeterminismStudy(repeats=3, hours=18.0, seed=BENCH_SEED)
    study.run()
    return study


def emit(title: str, body: str) -> None:
    """Print a figure's regenerated series (visible with ``-s`` or in
    captured output on failure)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")
