"""Figure 8 — 100-run validation of the Create/Drop models.

"Our 'hourly normal' model was able to imitate the create and drop
production trace closely. [...] The mean of the 100 modeled curves
nearly overlapped with the production curve."
"""

import numpy as np

from repro.sqldb.editions import Edition
from benchmarks.conftest import emit


def test_fig08_create_drop_validation(benchmark, validation_study):
    validation = benchmark.pedantic(
        validation_study.figure8_validation,
        args=(Edition.STANDARD_GP, 100), rounds=1, iterations=1)

    daily_production = validation.production_net.reshape(-1, 24).sum(axis=1)
    daily_model = validation.mean_net.reshape(-1, 24).sum(axis=1)
    rows = "\n".join(
        f"day {day}: production net={int(p):+4d}  model mean net={m:+7.1f}"
        for day, (p, m) in enumerate(zip(daily_production, daily_model)))
    emit("Figure 8 — net creates per day, production vs 100-run mean",
         rows)

    # The mean simulated curve nearly overlaps production.
    assert validation.relative_daily_error() < 0.05
    # Hourly RMSE of the mean curve is below the production trace's own
    # hour-to-hour variability.
    assert validation.creates_rmse() < float(
        np.std(validation.production_creates))
    assert validation.drops_rmse() < float(
        np.std(validation.production_drops))
    assert validation.simulated_creates.shape[0] == 100

    benchmark.extra_info["relative_daily_error"] = round(
        validation.relative_daily_error(), 5)
    benchmark.extra_info["creates_rmse"] = round(
        validation.creates_rmse(), 3)
    benchmark.extra_info["drops_rmse"] = round(validation.drops_rmse(), 3)
