"""Ablations for two load-bearing design choices.

1. **Simulated-annealing vs greedy placement** (§5.2): Service Fabric's
   PLB searches placements with simulated annealing; a best-fit greedy
   placer is the ablation. Both must produce valid clusters; annealing
   trades determinism for better spread.
2. **Persisted vs non-persisted local-store disk** (§3.3.2): the paper
   made BC disk models *stateful* precisely because resetting disk on
   failover "will lead to unexpected behavior in Toto". The ablation
   flips the BC model to non-persisted and shows the artifact: every
   BC failover teleports the replica's disk back to its creation-time
   value, deflating cluster disk.
"""

import dataclasses

import numpy as np

from repro.core.disk_models import DiskUsageModel
from repro.core.model_xml import TotoModelDocument
from repro.core.runner import run_scenario
from repro.experiments.scenarios import paper_scenario
from repro.sqldb.editions import Edition
from benchmarks.conftest import emit


def test_ablation_annealing_vs_greedy(benchmark):
    def run(use_annealing):
        base = paper_scenario(density=1.2, days=1.0, maintenance=False)
        scenario = dataclasses.replace(
            base,
            name=base.name + ("-anneal" if use_annealing else "-greedy"),
            ring=dataclasses.replace(base.ring,
                                     use_annealing=use_annealing))
        return run_scenario(scenario)

    annealed = benchmark.pedantic(run, args=(True,), rounds=1,
                                  iterations=1)
    greedy = run(False)

    def spread(result):
        final = result.frames[-1]
        return max(final.node_cores) - min(final.node_cores)

    emit("Ablation — annealing vs greedy placement (1 day @ 120%)",
         f"annealing: cores={annealed.kpis.final_reserved_cores:.0f} "
         f"spread={spread(annealed):.0f} "
         f"failovers={annealed.kpis.failovers.count}\n"
         f"greedy   : cores={greedy.kpis.final_reserved_cores:.0f} "
         f"spread={spread(greedy):.0f} "
         f"failovers={greedy.kpis.failovers.count}")

    # Both modes must run to completion with comparable admission.
    assert annealed.kpis.final_reserved_cores == \
        greedy.kpis.final_reserved_cores * np.clip(1.0, 0.9, 1.1) \
        or abs(annealed.kpis.final_reserved_cores
               - greedy.kpis.final_reserved_cores) < 120
    # Both keep CPU spread within a node's worth of cores.
    assert spread(annealed) <= 80
    assert spread(greedy) <= 80
    benchmark.extra_info["anneal_cores"] = round(
        annealed.kpis.final_reserved_cores)
    benchmark.extra_info["greedy_cores"] = round(
        greedy.kpis.final_reserved_cores)


def _flip_bc_persistence(document: TotoModelDocument) -> TotoModelDocument:
    models = []
    for model in document.resource_models:
        if (isinstance(model, DiskUsageModel)
                and model.selector.edition is Edition.PREMIUM_BC):
            models.append(DiskUsageModel(
                selector=model.selector, steady=model.steady,
                initial_growth=model.initial_growth,
                rapid_growth=model.rapid_growth,
                persisted=False,                      # the ablation
                floor_gb=model.floor_gb,
                rate_heterogeneity=model.rate_heterogeneity,
                start_weekday=model.start_weekday))
        else:
            models.append(model)
    return TotoModelDocument(resource_models=models,
                             population=document.population,
                             seed_salt=document.seed_salt + "-nopersist",
                             start_weekday=document.start_weekday)


def test_ablation_disk_persistence(benchmark):
    def run(persisted):
        base = paper_scenario(density=1.2, days=1.5, maintenance=False)
        document = base.model_document if persisted \
            else _flip_bc_persistence(base.model_document)
        scenario = dataclasses.replace(
            base, name=base.name + ("-persist" if persisted else "-reset"),
            model_document=document)
        return run_scenario(scenario)

    persisted = benchmark.pedantic(run, args=(True,), rounds=1,
                                   iterations=1)
    reset = run(False)

    emit("Ablation — persisted vs reset local-store disk (§3.3.2)",
         f"persisted: disk={persisted.kpis.final_disk_gb:8,.0f} GB "
         f"failovers={persisted.kpis.failovers.count}\n"
         f"reset    : disk={reset.kpis.final_disk_gb:8,.0f} GB "
         f"failovers={reset.kpis.failovers.count}")

    # Without persistence, BC replicas forget their growth whenever
    # they (or their RgManager's memory) move — cluster disk cannot
    # exceed the faithful run's and the two runs visibly diverge.
    assert reset.kpis.final_disk_gb <= \
        persisted.kpis.final_disk_gb + 500.0
    benchmark.extra_info["persisted_disk_gb"] = round(
        persisted.kpis.final_disk_gb)
    benchmark.extra_info["reset_disk_gb"] = round(
        reset.kpis.final_disk_gb)
