"""Figure 3 — regional demographics and database utilization.

(a) daily local-store DB fraction per cluster for two regions over a
week: Region 2 has a significantly larger local-store share.
(b) average CPU/memory utilization of non-idle databases over 12h:
"a large proportion of databases have low CPU and memory utilization".
"""

from benchmarks.conftest import emit


def test_fig03a_local_store_fractions(benchmark, demographics_study):
    boxes = benchmark(demographics_study.figure3a_boxes, 7)
    emit("Figure 3a/3b — demographics",
         demographics_study.format_report())

    region_one = boxes["region-1"]
    region_two = boxes["region-2"]
    # Region 2's local-store share is clearly above Region 1's.
    assert region_two.mean > region_one.mean
    assert region_two.q1 > region_one.q3

    benchmark.extra_info["region1_mean_pct"] = round(
        100 * region_one.mean, 2)
    benchmark.extra_info["region2_mean_pct"] = round(
        100 * region_two.mean, 2)


def test_fig03b_utilization_scatter(benchmark, demographics_study):
    summary = benchmark(demographics_study.figure3b_summary)
    # Most non-idle databases sit at low CPU utilization.
    assert summary["low_cpu_fraction"] > 0.6
    assert summary["cpu_mean"] < 30.0
    # Memory runs higher than CPU but stays moderate.
    assert summary["cpu_mean"] < summary["memory_mean"] < 70.0
    benchmark.extra_info.update(
        {key: round(value, 2) for key, value in summary.items()})
