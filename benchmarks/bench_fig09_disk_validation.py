"""Figure 9 — steady-state disk-usage model vs production.

The paper "primarily aimed to have the resulting cumulative disk usage
from our models to be as close to production as possible over the two
week training period"; the hourly-normal model also had to beat KDE
and customized binning on DTW/RMSE (§4.2.2) — the ablation half of
this benchmark regenerates that selection table.
"""

from benchmarks.conftest import emit


def test_fig09_disk_model_validation(benchmark, validation_study):
    validation = benchmark.pedantic(validation_study.figure9_validation,
                                    rounds=1, iterations=1)
    curve = validation.simulated_mean_curve
    production = validation.production_mean_curve
    samples = "\n".join(
        f"day {index}: production={production[index * 72]:7.2f} GB   "
        f"model={curve[index * 72]:7.2f} GB"
        for index in range(len(production) // 72))
    emit("Figure 9 — cumulative steady-state disk growth", samples)

    # Cumulative growth over the horizon matches production closely.
    assert validation.cumulative_growth_error() < 0.15
    benchmark.extra_info["dtw"] = round(validation.dtw(), 2)
    benchmark.extra_info["rmse"] = round(validation.rmse(), 4)
    benchmark.extra_info["growth_error"] = round(
        validation.cumulative_growth_error(), 4)


def test_fig09_model_selection_ablation(benchmark, validation_study):
    rows = benchmark.pedantic(validation_study.model_selection_ablation,
                              rounds=1, iterations=1)
    table = "\n".join(
        f"{row.model_name:>14}: DTW={row.dtw:8.2f}  RMSE={row.rmse:7.3f}  "
        f"growth err={row.cumulative_growth_error:6.1%}"
        for row in rows)
    emit("§4.2.2 ablation — hourly-normal vs KDE vs customized binning",
         table)

    by_name = {row.model_name: row for row in rows}
    # The paper's selection criterion: hourly-normal has comparable or
    # smaller DTW and RMSE than both baselines.
    assert by_name["hourly-normal"].dtw <= by_name["kde"].dtw * 1.05
    assert by_name["hourly-normal"].dtw <= by_name["binned"].dtw * 1.05
    assert by_name["hourly-normal"].rmse <= by_name["kde"].rmse * 1.05
    assert by_name["hourly-normal"].rmse <= by_name["binned"].rmse * 1.05
    benchmark.extra_info.update(
        {row.model_name: {"dtw": round(row.dtw, 2),
                          "rmse": round(row.rmse, 4)} for row in rows})
