"""Simulation-kernel microbenchmark: raw event throughput.

Measures the event layer in isolation — schedule / heap sift / fire /
cancel — with trivial callbacks, so the number tracks the kernel's own
overhead rather than model math. This is the hot path under every
benchmark run (a six-day density sweep executes hundreds of thousands
of events), and the number recorded in ``BENCH_perf.json`` guards the
perf trajectory across PRs.

The workload mixes the three behaviours real components exhibit:
periodic self-rescheduling chains (replica report sweeps, model
refreshes), one-shot events (creates/drops), and cancelled timers
(stopped processes, maintenance ends) so heap compaction is exercised.
"""

import time

from repro.simkernel import SimulationKernel

#: Independent periodic chains (think: per-node periodic daemons).
CHAINS = 50
#: One-shot events scheduled per chain tick, a third of them cancelled.
BURST = 6


def pump_kernel(target_events: int) -> dict:
    """Run the synthetic event mix until ``target_events`` have fired."""
    kernel = SimulationKernel()
    fired = [0]

    def make_chain(period, offset):
        def tick():
            fired[0] += 1
            kernel.schedule_oneshot_after(period, tick, label="chain")
            cancelled = None
            for burst in range(BURST):
                if burst % 3 == 0:
                    # Cancellation needs a handle: full schedule path.
                    cancelled = kernel.schedule_after(
                        burst + 1,
                        lambda: fired.__setitem__(0, fired[0] + 1),
                        label="one-shot")
                else:
                    kernel.schedule_oneshot_after(
                        burst + 1,
                        lambda: fired.__setitem__(0, fired[0] + 1),
                        label="one-shot")
            if cancelled is not None:
                cancelled.cancel()
        return tick

    for chain in range(CHAINS):
        kernel.schedule(chain + 1, make_chain(period=60 + chain, offset=chain),
                        label="chain-start")

    start = time.perf_counter()
    horizon = 0
    while kernel.events_executed < target_events:
        horizon += 3_600
        kernel.run_until(horizon)
    elapsed = time.perf_counter() - start
    return {
        "events": kernel.events_executed,
        "seconds": elapsed,
        "events_per_sec": kernel.events_executed / elapsed,
    }


def test_perf_kernel_event_throughput(benchmark):
    stats = benchmark.pedantic(pump_kernel, args=(200_000,),
                               rounds=3, iterations=1)
    assert stats["events"] >= 200_000
    # Sanity floor, far under any real machine: the guard is the
    # recorded trajectory, not this assert.
    assert stats["events_per_sec"] > 10_000
    benchmark.extra_info["events_per_sec"] = round(stats["events_per_sec"])


def test_perf_kernel_cancellation_debris_bounded():
    """Long runs with many cancelled timers don't accumulate dead events."""
    kernel = SimulationKernel()
    for index in range(500):
        event = kernel.schedule(1_000_000 + index, lambda: None,
                                label="doomed")
        event.cancel()
    # Compaction kept the buried-debris count under the threshold even
    # though none of the cancelled events ever reached the heap top.
    assert kernel._queue.cancelled_pending < kernel._queue.COMPACT_MIN
    assert kernel.pending_events == 0
