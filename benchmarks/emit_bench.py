"""Emit BENCH_perf.json: the repo's performance trajectory record.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py            # full
    PYTHONPATH=src python benchmarks/emit_bench.py --quick    # CI smoke

Records three headline numbers so future PRs can compare against the
current state instead of guessing:

* ``kernel_events_per_sec`` — raw event-layer throughput
  (``bench_perf_kernel.pump_kernel``);
* ``single_run`` — events/sec of one full benchmark run (models, PLB,
  telemetry included), the number that dominates every study;
* ``sweep`` — wall-clock of the 4-density x N-seed sweep at
  ``workers=1`` vs ``workers=4`` and the resulting speedup;
* ``lint`` — cold vs. content-hash-cached whole-program analysis of
  ``src/repro`` (``benchmarks/bench_lint.py``).

The JSON lands in the repo root as ``BENCH_perf.json``; commit it so
the trajectory is versioned alongside the code it measures.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.bench_lint import bench_lint  # noqa: E402
from benchmarks.bench_perf_kernel import pump_kernel  # noqa: E402
from repro import __version__  # noqa: E402
from repro.core.runner import run_scenario  # noqa: E402
from repro.experiments.scenarios import paper_scenario  # noqa: E402
from repro.parallel import SweepExecutor  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def bench_single_run(days: float, seed: int = 42) -> dict:
    scenario = paper_scenario(density=1.1, days=days, seed=seed,
                              maintenance=False)
    start = time.perf_counter()
    result = run_scenario(scenario)
    elapsed = time.perf_counter() - start
    return {
        "days": days,
        "events": result.events_executed,
        "seconds": round(elapsed, 3),
        "events_per_sec": round(result.events_executed / elapsed, 1),
    }


def bench_sweep(days: float, seeds: tuple, workers: int) -> dict:
    densities = (1.0, 1.1, 1.2, 1.4)
    scenarios = [paper_scenario(density=density, days=days, seed=seed,
                                maintenance=True)
                 for density in densities for seed in seeds]

    start = time.perf_counter()
    serial = SweepExecutor(max_workers=1).run(scenarios)
    serial_seconds = time.perf_counter() - start

    executor = SweepExecutor(max_workers=workers)
    start = time.perf_counter()
    parallel = executor.run(scenarios)
    parallel_seconds = time.perf_counter() - start

    identical = all(a.kpis == b.kpis and a.frames == b.frames
                    for a, b in zip(serial, parallel))
    return {
        "densities": list(densities),
        "seeds": list(seeds),
        "days": days,
        "runs": len(scenarios),
        "serial_seconds": round(serial_seconds, 2),
        "parallel_seconds": round(parallel_seconds, 2),
        "workers": workers,
        "speedup": round(serial_seconds / parallel_seconds, 2),
        "mode": executor.last_mode,
        "results_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", default=str(OUT_PATH))
    args = parser.parse_args(argv)

    if args.quick:
        kernel_events, run_days, sweep_days, seeds = 100_000, 0.25, 0.1, (42,)
    else:
        kernel_events, run_days, sweep_days, seeds = (
            400_000, 6.0, 0.5, (42, 43, 44))

    print("kernel microbenchmark ...", flush=True)
    kernel = pump_kernel(kernel_events)
    print(f"  {kernel['events_per_sec']:,.0f} events/sec")

    print(f"single {run_days:g}-day run ...", flush=True)
    single = bench_single_run(run_days)
    print(f"  {single['events_per_sec']:,.1f} events/sec "
          f"({single['seconds']}s)")

    print(f"4-density x {len(seeds)}-seed sweep, workers=1 vs "
          f"{args.workers} ...", flush=True)
    sweep = bench_sweep(sweep_days, seeds, args.workers)
    print(f"  serial {sweep['serial_seconds']}s, parallel "
          f"{sweep['parallel_seconds']}s -> {sweep['speedup']}x "
          f"({sweep['mode']})")

    print("whole-program lint, cold vs cached ...", flush=True)
    lint = bench_lint(repeats=1 if args.quick else 3)
    print(f"  cold {lint['cold_seconds']}s, cached "
          f"{lint['cached_seconds']}s -> {lint['cache_speedup']}x")

    payload = {
        "version": __version__,
        "quick": args.quick,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "kernel_events_per_sec": round(kernel["events_per_sec"]),
        "single_run": single,
        "sweep": sweep,
        "lint": lint,
    }
    pathlib.Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
