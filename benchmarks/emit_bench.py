"""Emit BENCH_perf.json: the repo's performance trajectory record.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py            # full
    PYTHONPATH=src python benchmarks/emit_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/emit_bench.py --quick --check
        # regression gates vs the committed BENCH_perf.json; writes
        # nothing.  Fails (exit 1) when the committed sweep record says
        # parallel != serial, when re-measured kernel throughput drops
        # >20% (skipped with a warning if the committed record came
        # from a machine with a different core count), or when one
        # re-measured cold lint takes >50% longer than committed

Records three headline numbers so future PRs can compare against the
current state instead of guessing:

* ``kernel_events_per_sec`` — raw event-layer throughput
  (``bench_perf_kernel.pump_kernel``);
* ``single_run`` — events/sec of one full benchmark run (models, PLB,
  telemetry included), the number that dominates every study;
* ``sweep`` — wall-clock of the 4-density x N-seed sweep at
  ``workers=1`` vs ``workers=4`` and the resulting speedup. The block
  records ``effective_cores``; when the machine has fewer cores than
  workers the speedup is reported as ``null`` with a ``"cpu-bound"``
  note (process parallelism cannot pay without cores — a ~1.0x wall
  ratio there is expected, not a parallelism regression);
* ``fleet`` — the region-scale tier (docs/FLEET.md): N clusters
  stamped from one template, run serial vs sharded, recording wall
  clock and the merged summary digest. The digest is a pure function
  of the topology, so ``--check`` replays the committed configuration
  and fails on any drift — a deterministic gate, immune to machine
  noise;
* ``lint`` — cold vs. content-hash-cached whole-program analysis of
  ``src/repro`` (``benchmarks/bench_lint.py``).

The JSON lands in the repo root as ``BENCH_perf.json``; commit it so
the trajectory is versioned alongside the code it measures.

Methodology: the kernel number is the best of three passes — the shared
bench machine throttles unpredictably, and the best pass is the stable
estimate of what the code can do (the quantity the trajectory tracks),
while single passes swing 2x with machine load.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.bench_lint import (  # noqa: E402
    bench_lint,
    bench_totonum,
    bench_totoperf,
)
from benchmarks.bench_perf_kernel import pump_kernel  # noqa: E402
from repro import __version__  # noqa: E402
from repro.core.runner import run_scenario  # noqa: E402
from repro.experiments.scenarios import paper_scenario  # noqa: E402
from repro.fleet import ClusterTemplate, FleetTopology, run_fleet  # noqa: E402
from repro.parallel import SweepExecutor  # noqa: E402

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_perf.json"

#: --check fails when the re-measured kernel throughput drops more than
#: this fraction below the committed number.
REGRESSION_TOLERANCE = 0.20
#: --check fails when a re-measured cold lint takes more than this
#: fraction longer than the committed number (the analyzer is pure
#: CPU-bound AST walking, so a 1.5x blowup is a real regression, not
#: machine noise).
LINT_REGRESSION_TOLERANCE = 0.50
#: Passes for the best-of-N kernel measurement.
KERNEL_PASSES = 3


def bench_kernel(target_events: int) -> dict:
    """Best-of-N kernel microbenchmark (see module docstring)."""
    best = None
    for _ in range(KERNEL_PASSES):
        result = pump_kernel(target_events)
        if best is None or result["events_per_sec"] > best["events_per_sec"]:
            best = result
    best["passes"] = KERNEL_PASSES
    return best


def check_kernel_regression(measured: float, out_path: str) -> int:
    """Gate: compare ``measured`` against the committed record."""
    path = pathlib.Path(out_path)
    if not path.exists():
        print(f"no committed {path.name}; nothing to compare against")
        return 0
    committed = json.loads(path.read_text())["kernel_events_per_sec"]
    floor = committed * (1.0 - REGRESSION_TOLERANCE)
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(f"kernel events/sec: measured {measured:,.0f} vs committed "
          f"{committed:,.0f} (floor {floor:,.0f}) -> {verdict}")
    return 0 if measured >= floor else 1


def run_checks(out_path: str, kernel_events: int) -> int:
    """The ``--check`` regression gates against the committed record.

    Five gates, all reported before the combined verdict:

    * **sweep** — the committed record itself must say the parallel
      sweep reproduced the serial results (``results_identical``);
    * **sweep ratio** — the committed speedup must not be < 1.0;
      skipped (like the kernel gate) when the committed record is
      cpu-bound (``effective_cores < workers``), where the wall ratio
      measures scheduler noise rather than parallelism;
    * **fleet** — replay the committed fleet configuration serially
      and compare merged digests (deterministic, machine-independent);
    * **kernel** — re-measure and compare throughput, skipped with a
      warning when the committed record was taken on a machine with a
      different core count (throughput is not comparable across them);
    * **lint** — re-measure one cold whole-program analysis and fail
      when it regressed more than ``LINT_REGRESSION_TOLERANCE``;
    * **totonum** — same ceiling for one cold numeric-tier
      (TL030..TL034) run, so the merge-registry/numeric-scope
      inference cannot quietly blow up lint latency.
    """
    path = pathlib.Path(out_path)
    if not path.exists():
        print(f"no committed {path.name}; nothing to compare against")
        return 0
    committed = json.loads(path.read_text())
    failures = 0

    sweep = committed.get("sweep", {})
    if sweep.get("results_identical") is False:
        print("sweep: committed record shows parallel != serial results "
              "-> FAIL (the sweep must reproduce the serial run "
              "byte for byte before its numbers mean anything)")
        failures += 1
    else:
        print("sweep: committed results_identical -> OK")

    sweep_workers = sweep.get("workers")
    sweep_cores = sweep.get("effective_cores")
    gate = sweep.get("gate")
    if gate is None:
        # Records written before the explicit gate field: re-derive the
        # verdict the emitter would have recorded.
        gate = ("skipped"
                if (sweep_cores is not None and sweep_workers is not None
                    and sweep_cores < sweep_workers)
                else "active")
    if gate == "skipped":
        # Same reasoning as the kernel gate's cross-machine skip: with
        # fewer cores than workers the wall ratio measures scheduler
        # noise, so on a 1-core CI runner it must not gate anything.
        print(f"sweep ratio gate SKIPPED: committed record is cpu-bound "
              f"({sweep_cores} core(s) < {sweep_workers} workers)")
    elif sweep.get("speedup") is not None and sweep["speedup"] < 1.0:
        print(f"sweep ratio: committed speedup {sweep['speedup']} < 1.0 "
              "-> FAIL (parallel slower than serial on a machine with "
              "enough cores)")
        failures += 1
    else:
        print("sweep ratio: OK")

    failures += check_fleet_gate(committed.get("fleet"))

    committed_cpus = committed.get("machine", {}).get("cpu_count")
    current_cpus = os.cpu_count()
    if committed_cpus != current_cpus:
        print(f"kernel gate SKIPPED: committed record measured on "
              f"{committed_cpus} cpu(s), this machine has {current_cpus}; "
              "throughput is not comparable across machines")
    else:
        print("kernel microbenchmark ...", flush=True)
        kernel = bench_kernel(kernel_events)
        failures += check_kernel_regression(kernel["events_per_sec"],
                                            out_path)

    committed_cold = committed.get("lint", {}).get("cold_seconds")
    if committed_cold:
        print("cold lint ...", flush=True)
        measured_cold = bench_lint(repeats=1)["cold_seconds"]
        ceiling = committed_cold * (1.0 + LINT_REGRESSION_TOLERANCE)
        verdict = "OK" if measured_cold <= ceiling else "REGRESSION"
        print(f"lint cold seconds: measured {measured_cold} vs committed "
              f"{committed_cold} (ceiling {ceiling:.3f}) -> {verdict}")
        if measured_cold > ceiling:
            failures += 1
    else:
        print("lint gate skipped: committed record has no "
              "lint.cold_seconds")

    committed_num = committed.get("totonum", {}).get("cold_seconds")
    if committed_num:
        print("cold numeric-tier lint ...", flush=True)
        measured_num = bench_totonum(repeats=1)["cold_seconds"]
        ceiling = committed_num * (1.0 + LINT_REGRESSION_TOLERANCE)
        verdict = "OK" if measured_num <= ceiling else "REGRESSION"
        print(f"totonum cold seconds: measured {measured_num} vs "
              f"committed {committed_num} (ceiling {ceiling:.3f}) -> "
              f"{verdict}")
        if measured_num > ceiling:
            failures += 1
    else:
        print("totonum gate skipped: committed record has no "
              "totonum.cold_seconds")

    return 1 if failures else 0


def check_fleet_gate(fleet: dict) -> int:
    """Deterministic fleet gate: replay the committed config, compare
    digests.

    Unlike the timing gates, the fleet digest is a pure function of the
    topology — identical on every machine — so this gate re-runs the
    committed configuration serially and fails on *any* drift in the
    simulator, the columnar stores, the worker-side reducer, or the
    merge.
    """
    if not fleet:
        print("fleet gate skipped: committed record has no fleet row")
        return 0
    if fleet.get("digests_identical") is False:
        print("fleet: committed record shows serial != sharded digest "
              "-> FAIL (the fleet merge must be execution-mode "
              "independent)")
        return 1
    topology = FleetTopology(
        cluster_count=fleet["clusters"], prefix="bench",
        template=ClusterTemplate(node_count=fleet["node_count"],
                                 days=fleet["days"]))
    print(f"fleet digest replay ({fleet['clusters']} clusters) ...",
          flush=True)
    measured = run_fleet(topology, max_workers=1).digest
    verdict = "OK" if measured == fleet["digest"] else "REGRESSION"
    print(f"fleet digest: measured {measured[:16]}... vs committed "
          f"{fleet['digest'][:16]}... -> {verdict}")
    return 0 if measured == fleet["digest"] else 1


def bench_fleet(clusters: int, node_count: int, days: float,
                workers: int) -> dict:
    """Fleet-scale row: serial vs sharded wall clock plus the digest."""
    topology = FleetTopology(
        cluster_count=clusters, prefix="bench",
        template=ClusterTemplate(node_count=node_count, days=days))
    start = time.perf_counter()
    serial = run_fleet(topology, max_workers=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    sharded = run_fleet(topology, max_workers=workers)
    sharded_seconds = time.perf_counter() - start
    return {
        "clusters": clusters,
        "node_count": node_count,
        "days": days,
        "databases": serial.kpis.databases_created,
        "events": serial.kpis.events_executed,
        "serial_seconds": round(serial_seconds, 2),
        "sharded_seconds": round(sharded_seconds, 2),
        "workers": workers,
        "effective_cores": os.cpu_count() or 1,
        "events_per_sec": round(
            serial.kpis.events_executed / serial_seconds, 1),
        "mode": sharded.mode,
        "digest": serial.digest,
        "digests_identical": serial.digest == sharded.digest,
    }


def bench_single_run(days: float, seed: int = 42) -> dict:
    scenario = paper_scenario(density=1.1, days=days, seed=seed,
                              maintenance=False)
    start = time.perf_counter()
    result = run_scenario(scenario)
    elapsed = time.perf_counter() - start
    return {
        "days": days,
        "events": result.events_executed,
        "seconds": round(elapsed, 3),
        "events_per_sec": round(result.events_executed / elapsed, 1),
    }


def bench_sweep(days: float, seeds: tuple, workers: int) -> dict:
    densities = (1.0, 1.1, 1.2, 1.4)
    scenarios = [paper_scenario(density=density, days=days, seed=seed,
                                maintenance=True)
                 for density in densities for seed in seeds]

    start = time.perf_counter()
    serial = SweepExecutor(max_workers=1).run(scenarios)
    serial_seconds = time.perf_counter() - start

    executor = SweepExecutor(max_workers=workers)
    start = time.perf_counter()
    parallel = executor.run(scenarios)
    parallel_seconds = time.perf_counter() - start

    identical = all(a.kpis == b.kpis and a.frames == b.frames
                    for a, b in zip(serial, parallel))
    effective_cores = os.cpu_count() or 1
    measured_ratio = round(serial_seconds / parallel_seconds, 2)
    cpu_bound = effective_cores < workers
    return {
        "densities": list(densities),
        "seeds": list(seeds),
        "days": days,
        "runs": len(scenarios),
        "serial_seconds": round(serial_seconds, 2),
        "parallel_seconds": round(parallel_seconds, 2),
        "workers": workers,
        "effective_cores": effective_cores,
        # With fewer cores than workers the wall ratio measures
        # scheduling overhead, not parallelism; null keeps the number
        # from being read as a regression. measured_ratio preserves the
        # raw observation either way.
        "speedup": None if cpu_bound else measured_ratio,
        "speedup_note": ("cpu-bound: %d core(s) < %d workers"
                         % (effective_cores, workers)) if cpu_bound
                        else "parallel speedup over serial",
        # The --check verdict, made explicit at measurement time so the
        # committed record says *itself* whether its ratio gates
        # anything; "skipped" = cpu-bound, the wall ratio is noise.
        "gate": "skipped" if cpu_bound else "active",
        "measured_ratio": measured_ratio,
        "mode": executor.last_mode,
        "results_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small configuration for CI smoke runs")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", default=str(OUT_PATH))
    parser.add_argument("--check", action="store_true",
                        help="re-measure the kernel only and fail on a "
                             ">20%% regression vs the committed record")
    args = parser.parse_args(argv)

    if args.quick:
        kernel_events, run_days, sweep_days, seeds = 100_000, 0.25, 0.1, (42,)
        fleet_clusters = 10
    else:
        kernel_events, run_days, sweep_days, seeds = (
            400_000, 6.0, 0.5, (42, 43, 44))
        fleet_clusters = 100

    if args.check:
        return run_checks(args.out, kernel_events)

    print("kernel microbenchmark ...", flush=True)
    kernel = bench_kernel(kernel_events)
    print(f"  {kernel['events_per_sec']:,.0f} events/sec "
          f"(best of {kernel['passes']})")

    print(f"single {run_days:g}-day run ...", flush=True)
    single = bench_single_run(run_days)
    print(f"  {single['events_per_sec']:,.1f} events/sec "
          f"({single['seconds']}s)")

    print(f"4-density x {len(seeds)}-seed sweep, workers=1 vs "
          f"{args.workers} ...", flush=True)
    sweep = bench_sweep(sweep_days, seeds, args.workers)
    shown = sweep["speedup"] if sweep["speedup"] is not None \
        else f"{sweep['measured_ratio']} [{sweep['speedup_note']}]"
    print(f"  serial {sweep['serial_seconds']}s, parallel "
          f"{sweep['parallel_seconds']}s -> {shown} ({sweep['mode']})")

    print(f"{fleet_clusters}-cluster fleet, serial vs {args.workers} "
          "workers ...", flush=True)
    fleet = bench_fleet(fleet_clusters, node_count=4, days=0.05,
                        workers=args.workers)
    print(f"  {fleet['databases']} databases, serial "
          f"{fleet['serial_seconds']}s, sharded {fleet['sharded_seconds']}s, "
          f"digests_identical={fleet['digests_identical']}")

    print("whole-program lint, cold vs cached ...", flush=True)
    lint = bench_lint(repeats=1 if args.quick else 3)
    print(f"  cold {lint['cold_seconds']}s, cached "
          f"{lint['cached_seconds']}s -> {lint['cache_speedup']}x")

    print("perf tier (TL020..TL024), cold vs cached ...", flush=True)
    totoperf = bench_totoperf(repeats=1 if args.quick else 3)
    print(f"  cold {totoperf['cold_seconds']}s, cached "
          f"{totoperf['cached_seconds']}s -> {totoperf['cache_speedup']}x")

    print("numeric tier (TL030..TL034), cold vs cached ...", flush=True)
    totonum = bench_totonum(repeats=1 if args.quick else 3)
    print(f"  cold {totonum['cold_seconds']}s, cached "
          f"{totonum['cached_seconds']}s -> {totonum['cache_speedup']}x")

    payload = {
        "version": __version__,
        "quick": args.quick,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "kernel_events_per_sec": round(kernel["events_per_sec"]),
        "single_run": single,
        "sweep": sweep,
        "fleet": fleet,
        "lint": lint,
        "totoperf": totoperf,
        "totonum": totonum,
    }
    pathlib.Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
