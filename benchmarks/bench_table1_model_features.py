"""Table 1 — features used for the Create/Drop models.

The paper's features: weekend vs. weekday, hour of day, and database
edition (Standard/GP vs. Premium/BC) — 2 x 24 x 2 = 96 Create models
and 96 Drop models. This benchmark verifies the trained model family
has exactly that structure.
"""

from repro.core.hourly_schedule import DayType
from repro.sqldb.editions import Edition
from benchmarks.conftest import emit


def test_table1_model_features(benchmark, validation_study):
    document = benchmark(lambda: validation_study.artifacts.document)
    population = document.population

    emit("Table 1 — features used for create and drop models",
         "Temporal: Weekend vs. Weekday\n"
         "Temporal: Hours (0-23)\n"
         "Database Edition: Standard/GP vs. Premium/BC\n"
         f"=> {2 * 24 * 2} Create models and {2 * 24 * 2} Drop models")

    create_cells = 0
    drop_cells = 0
    for edition in Edition:
        model = population.create_drop[edition]
        for daytype in DayType:
            for hour in range(24):
                model.creates.params(daytype, hour)   # must all exist
                model.drops.params(daytype, hour)
                create_cells += 1
                drop_cells += 1
    # 96 distinct hourly-normal Create models and 96 Drop models.
    assert create_cells == 96
    assert drop_cells == 96
    benchmark.extra_info["create_models"] = create_cells
    benchmark.extra_info["drop_models"] = drop_cells
