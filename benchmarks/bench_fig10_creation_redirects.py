"""Figure 10 — creation attempts redirected per density level.

Paper: the first redirect occurs at hour 23 (100%), hour 28 (110%),
hour 55 (120%), and never at 140%; and the 110% run *crosses* the
100% run — a large database the 100% cluster redirected was admitted
at 110%, eating its headroom, so 110% ends with more redirects.

Absolute hours differ on our synthetic substrate; the ordering and
the 140%-stays-clean shape must hold, and the 110/100 crossover is
asserted in its weak form (final counts comparable or crossed).
"""

from benchmarks.conftest import emit


def test_fig10_creation_redirects(benchmark, density_study):
    series = benchmark(density_study.figure10_series)
    emit("Figure 10 — cumulative creation redirects",
         density_study.format_figure10())

    firsts = {pct: density_study.result(pct / 100.0).first_redirect_hour()
              for pct in (100, 110, 120, 140)}

    # First-redirect ordering: lower density redirects earlier.
    assert firsts[100] is not None
    assert firsts[110] is None or firsts[100] <= firsts[110]
    assert firsts[120] is None or \
        (firsts[110] is not None and firsts[110] <= firsts[120])
    # 140% redirects least — well under half the baseline's count (the
    # paper's 140% run is fully clean; our synthetic substrate sees a
    # late trickle of placement-infeasible large requests).
    final = {pct: values[-1] for pct, values in series.items()}
    assert final[140] == min(final.values())
    assert final[140] <= 0.5 * final[100]
    # Redirect pressure decreases with density at the end of the run.
    assert final[100] >= final[120] >= final[140]
    # The 110% run ends with at least as many redirects as 100% (the
    # paper's crossover: 110% admitted a large database that 100%
    # redirected, and paid for it later).
    assert final[110] >= final[100] - 5

    benchmark.extra_info["first_redirect_hour"] = firsts
    benchmark.extra_info["final_redirects"] = final
