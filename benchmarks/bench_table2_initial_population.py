"""Table 2 — the initial population.

Paper: 33 Premium/BC + 187 Standard/GP = 220 databases, bootstrapped
identically before every density experiment.
"""

from benchmarks.conftest import emit


def test_table2_initial_population(benchmark, density_study):
    table2 = benchmark(density_study.table2_row)
    emit("Table 2 — initial population", density_study.format_tables())

    assert table2["premium_bc"] == 33
    assert table2["standard_gp"] == 187
    assert table2["total"] == 220

    # Identical across every density (same bootstrap seed).
    for density in density_study.densities:
        first = density_study.result(density).frames[0]
        assert first.active_bc == 33
        assert first.active_gp == 187

    benchmark.extra_info.update(table2)
