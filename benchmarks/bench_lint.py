"""Benchmark the whole-program analyzer: cold vs. cached lint runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_lint.py

The totolint whole-program pass (call graph + hot-path inference +
substream registry) re-walks every AST on a cold run but reuses
per-file extracts keyed by content hash when ``--cache`` points at a
warm cache.  This benchmark measures both over the real ``src/repro``
tree and reports the speedup the incremental cache buys — the number
CI's incremental smoke keeps honest (a cached re-run must report zero
misses).
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro.analysis.engine import lint_paths  # noqa: E402

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def _bench_rules(repeats: int, rules=None) -> dict:
    """Time cold (no cache reuse) and cached full-tree analysis."""
    with tempfile.TemporaryDirectory(prefix="bench-lint-") as tmp:
        cache = pathlib.Path(tmp) / "cache.json"

        cold_seconds = []
        for _ in range(repeats):
            cache.unlink(missing_ok=True)
            start = time.perf_counter()
            report = lint_paths([SRC], rules=rules, cache_path=cache)
            cold_seconds.append(time.perf_counter() - start)
            assert report.cache_misses > 0

        cached_seconds = []
        for _ in range(repeats):
            start = time.perf_counter()
            report = lint_paths([SRC], rules=rules, cache_path=cache)
            cached_seconds.append(time.perf_counter() - start)
            assert report.cache_misses == 0, "cache did not take"

        cold = min(cold_seconds)
        cached = min(cached_seconds)
        return {
            "files": report.files_checked,
            "registry_size": report.registry_size,
            "hot_functions": report.hot_functions,
            "cold_seconds": round(cold, 3),
            "cached_seconds": round(cached, 3),
            "cache_speedup": round(cold / cached, 2),
        }


def bench_lint(repeats: int = 3) -> dict:
    """Full-catalogue analysis, cold vs. cached."""
    return _bench_rules(repeats)


def bench_totoperf(repeats: int = 3) -> dict:
    """The performance tier (TL020..TL024) alone, cold vs. cached.

    The perf rules lean on the same program graph as the determinism
    tier, so their cached runs should be near-free; this row keeps the
    marginal cost of the tier visible in BENCH_perf.json.
    """
    from repro.analysis.perf_rules import PERF_TIER
    from repro.analysis.rules import get_rules

    return _bench_rules(repeats, rules=get_rules(PERF_TIER))


def bench_totonum(repeats: int = 3) -> dict:
    """The numeric tier (TL030..TL034) alone, cold vs. cached.

    The numeric rules reuse the same cached extracts (merge registry,
    canonical sinks, numeric intervals) as the other tiers; this row
    keeps the tier's marginal cost visible in BENCH_perf.json.
    """
    from repro.analysis.numeric_rules import NUMERIC_TIER
    from repro.analysis.rules import get_rules

    return _bench_rules(repeats, rules=get_rules(NUMERIC_TIER))


def main() -> int:
    print(f"linting {SRC} cold vs cached ...", flush=True)
    result = bench_lint()
    print(f"  {result['files']} files, registry "
          f"{result['registry_size']}, hot {result['hot_functions']}")
    print(f"  cold {result['cold_seconds']}s, cached "
          f"{result['cached_seconds']}s -> "
          f"{result['cache_speedup']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
