"""Figure 11 — reserved cores vs disk usage over the six days.

Paper: each point is an hour; higher densities reserve more cores; the
120/140% runs show visibly higher disk than 100/110% (driven by big
local-store databases that the low-density runs redirected); outliers
correspond to cluster maintenance upgrades.
"""

import numpy as np

from benchmarks.conftest import emit


def test_fig11_cores_vs_disk(benchmark, density_study):
    points = benchmark(density_study.figure11_points)
    emit("Figure 11 — reserved cores vs disk usage (hourly)",
         density_study.format_figure11())

    def final_median(pct, index):
        tail = points[pct][-24:]
        return float(np.median([p[index] for p in tail]))

    # Reserved cores increase with density.
    cores = {pct: final_median(pct, 0) for pct in (100, 110, 120, 140)}
    assert cores[100] < cores[110] < cores[120] < cores[140]

    # Disk: the high-density runs carry clearly more disk than 100%.
    disk = {pct: final_median(pct, 1) for pct in (100, 110, 120, 140)}
    assert disk[140] > disk[100]
    assert disk[120] > disk[100]

    # Every series is hourly over the full horizon.
    lengths = {len(values) for values in points.values()}
    assert len(lengths) == 1

    benchmark.extra_info["final_cores"] = {k: round(v) for k, v
                                           in cores.items()}
    benchmark.extra_info["final_disk_gb"] = {k: round(v) for k, v
                                             in disk.items()}
