"""Table 3 — experiment parameters after bootstrap.

Paper: the initial population and its 77% disk utilization are held
constant while the free remaining logical cores grow with the density
level (65 / 158 / 224 / 326 at 100/110/120/140%).
"""

from benchmarks.conftest import emit


def test_table3_experiment_parameters(benchmark, density_study):
    rows = benchmark(density_study.table3_rows)
    emit("Table 3 — experiment parameters", density_study.format_tables())

    by_pct = {row["density_pct"]: row for row in rows}
    # Free remaining cores strictly increase with the density level.
    free = [by_pct[pct]["free_remaining_cores"]
            for pct in (100, 110, 120, 140)]
    assert free == sorted(free)
    assert free[0] < free[-1]
    # Each +10% density adds roughly one node-worth of logical cores
    # (the paper's 65 -> 158 -> 224 -> 326 progression).
    assert 60 <= free[1] - free[0] <= 140
    # Disk utilization is identical (77% target) across densities.
    disk = {by_pct[pct]["disk_usage_pct"] for pct in (100, 110, 120, 140)}
    assert len(disk) == 1
    assert disk.pop() == 77

    benchmark.extra_info["free_remaining_cores"] = {
        pct: by_pct[pct]["free_remaining_cores"]
        for pct in (100, 110, 120, 140)}
