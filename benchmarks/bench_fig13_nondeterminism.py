"""Figure 13 — non-determinism of PLB placements (§5.3.4).

Three identical 18-hour experiments varying only the PLB's annealing
randomness. Paper: node-level disk and reserved-core distributions are
statistically indistinguishable (5 of 6 pairwise Wilcoxon tests
insignificant at alpha = 0.05) and failover counts stay within noise
(theirs: 1, 0, 1).
"""

from benchmarks.conftest import emit


def test_fig13_nondeterminism(benchmark, nondeterminism_study):
    tests = benchmark.pedantic(nondeterminism_study.pairwise_tests,
                               rounds=1, iterations=1)
    emit("Figure 13 — repeatability under PLB non-determinism",
         nondeterminism_study.format_report())

    assert len(tests) == 6  # 3 pairs x 2 metrics
    insignificant = nondeterminism_study.insignificant_fraction()
    # The paper: 5 of 6 insignificant. Allow the same one-test slack.
    assert insignificant >= 5.0 / 6.0 - 1e-9

    # Mean node-level readings agree across runs within a few percent.
    for metric in ("disk", "cores"):
        boxes = nondeterminism_study.dispersion(metric)
        means = [box.mean for box in boxes]
        assert max(means) <= 1.10 * min(means)

    failovers = nondeterminism_study.failover_counts()
    assert max(failovers) - min(failovers) <= 5

    benchmark.extra_info["insignificant_fraction"] = round(insignificant, 3)
    benchmark.extra_info["failover_counts"] = failovers
