"""Figure 12 — (a) relative utilization and (b) failed-over cores.

Paper: (a) the 140% experiment accommodates almost 30% more reserved
cores than 100%; (b) 140% fails over the most cores — more Premium/BC
cores than the total of the other experiments — while 100-120% stay
comparatively low (120% was their lowest).
"""

from benchmarks.conftest import emit


def test_fig12a_relative_utilization(benchmark, density_study):
    rows = benchmark(density_study.figure12a_rows)
    emit("Figure 12 — utilization and failed-over cores",
         density_study.format_figure12())

    by_pct = {row["density_pct"]: row for row in rows}
    # Reserved-core utilization rises with density; 140% lands in the
    # +20-35% band around the paper's ~+30%.
    assert by_pct[110]["rel_cores"] > 1.0
    assert by_pct[140]["rel_cores"] > by_pct[120]["rel_cores"] \
        > by_pct[110]["rel_cores"]
    assert 1.15 < by_pct[140]["rel_cores"] < 1.40
    # Disk rises with density too.
    assert by_pct[140]["rel_disk"] > 1.0
    benchmark.extra_info["rel_cores_140"] = round(
        by_pct[140]["rel_cores"], 3)


def test_fig12b_failed_over_cores(benchmark, density_study):
    rows = benchmark(density_study.figure12b_rows)
    by_pct = {row["density_pct"]: row for row in rows}

    total_140 = by_pct[140]["total_cores_moved"]
    total_others = sum(by_pct[pct]["total_cores_moved"]
                       for pct in (100, 110, 120))
    # 140% is the worst offender by a wide margin...
    assert total_140 == max(row["total_cores_moved"] for row in rows)
    assert total_140 > 0.6 * total_others
    # ...and moves the most Premium/BC capacity.
    assert by_pct[140]["bc_cores_moved"] == max(
        row["bc_cores_moved"] for row in rows)
    # The baseline barely fails over.
    assert by_pct[100]["total_cores_moved"] < 0.5 * total_140

    benchmark.extra_info["failed_over_cores"] = {
        pct: round(by_pct[pct]["total_cores_moved"])
        for pct in (100, 110, 120, 140)}
    benchmark.extra_info["bc_cores"] = {
        pct: round(by_pct[pct]["bc_cores_moved"])
        for pct in (100, 110, 120, 140)}
